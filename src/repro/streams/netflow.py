"""Synthetic NetFlow-style traffic stream (the paper's Section 1 scenario).

The introduction motivates top-k monitoring with an ISP watching flow
records: *top-100 flows by throughput* whose results share a
destination hint at a DDoS attack, and *top-100 flows with the minimum
packet count* whose results share a source hint at a worm scanning the
address space.

This module generates such a feed: baseline flows with log-normal-ish
sizes, plus injectable attack episodes. Each flow is exported as a
:class:`FlowRecord` carrying both the raw fields (addresses, bytes,
packets, duration) and the normalised attribute vector fed to the
monitor: ``(throughput, packets)`` scaled into the unit workspace.

The substitution note from DESIGN.md applies: real NetFlow traces are
proprietary; this generator produces the closest synthetic equivalent
that exercises the identical code path (multi-attribute records, mixed
increasing/decreasing preferences, bursty episodes).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.tuples import RecordFactory, StreamRecord

#: Normalisation caps: throughputs/packet counts above these map to 1.0.
MAX_THROUGHPUT_BPS = 1e7
MAX_PACKETS = 1e4


@dataclass(frozen=True, slots=True)
class Flow:
    """One raw flow observation."""

    src: str
    dst: str
    bytes_count: int
    packets: int
    duration: float

    @property
    def throughput(self) -> float:
        """Bytes per second over the flow's duration."""
        return self.bytes_count / self.duration if self.duration > 0 else 0.0


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """A flow paired with its monitor-facing stream record."""

    flow: Flow
    record: StreamRecord


def _normalise(value: float, cap: float) -> float:
    """Log-scale into [0, 1): flows span orders of magnitude."""
    if value <= 1.0:
        return 0.0
    return min(0.999999, math.log(value) / math.log(cap))


class NetFlowStream:
    """Flow generator with injectable DDoS and worm episodes.

    Args:
        flows_per_cycle: baseline arrivals per cycle.
        hosts: size of the simulated address pool.
        seed: reproducible randomness.
    """

    def __init__(
        self,
        flows_per_cycle: int = 200,
        hosts: int = 500,
        seed: int = 42,
    ) -> None:
        self._rng = random.Random(seed)
        self._factory = RecordFactory()
        self.flows_per_cycle = flows_per_cycle
        self._hosts = [self._random_ip() for _ in range(hosts)]
        self._cycle = 0
        #: cycle -> list of (kind, target) episodes active then
        self._episodes: Dict[int, List[Tuple[str, str]]] = {}

    def _random_ip(self) -> str:
        rng = self._rng
        return ".".join(str(rng.randrange(1, 255)) for _ in range(4))

    # ------------------------------------------------------------------
    # Episode injection
    # ------------------------------------------------------------------

    def inject_ddos(
        self, start_cycle: int, duration: int, target: Optional[str] = None
    ) -> str:
        """Schedule a DDoS: many high-throughput flows to one victim."""
        victim = target or self._rng.choice(self._hosts)
        for cycle in range(start_cycle, start_cycle + duration):
            self._episodes.setdefault(cycle, []).append(("ddos", victim))
        return victim

    def inject_worm(
        self, start_cycle: int, duration: int, source: Optional[str] = None
    ) -> str:
        """Schedule a worm: one source probing with tiny SYN flows."""
        worm = source or self._rng.choice(self._hosts)
        for cycle in range(start_cycle, start_cycle + duration):
            self._episodes.setdefault(cycle, []).append(("worm", worm))
        return worm

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _baseline_flow(self) -> Flow:
        rng = self._rng
        bytes_count = int(math.exp(rng.gauss(8.0, 2.0)))  # ~3 KB median
        packets = max(1, bytes_count // rng.randint(200, 1400))
        duration = max(0.05, rng.expovariate(1 / 5.0))
        return Flow(
            src=rng.choice(self._hosts),
            dst=rng.choice(self._hosts),
            bytes_count=bytes_count,
            packets=packets,
            duration=duration,
        )

    def _ddos_flow(self, victim: str) -> Flow:
        rng = self._rng
        bytes_count = int(math.exp(rng.gauss(13.0, 0.5)))  # ~0.5 MB
        duration = max(0.05, rng.uniform(0.1, 1.0))  # short & fast
        packets = max(1, bytes_count // 1000)
        return Flow(
            src=rng.choice(self._hosts),
            dst=victim,
            bytes_count=bytes_count,
            packets=packets,
            duration=duration,
        )

    def _worm_flow(self, source: str) -> Flow:
        rng = self._rng
        return Flow(
            src=source,
            dst=self._random_ip(),  # random probing across the space
            bytes_count=rng.randint(40, 80),  # one TCP SYN
            packets=1,
            duration=max(0.01, rng.uniform(0.01, 0.2)),
        )

    def to_record(self, flow: Flow, time: float) -> StreamRecord:
        """Map a flow to the unit workspace: (throughput, packets)."""
        return self._factory.make(
            (
                _normalise(flow.throughput, MAX_THROUGHPUT_BPS),
                _normalise(flow.packets, MAX_PACKETS),
            ),
            time,
        )

    def next_batch(self) -> List[FlowRecord]:
        """One cycle of flows (baseline + any active episodes)."""
        self._cycle += 1
        time = float(self._cycle)
        flows: List[Flow] = [
            self._baseline_flow() for _ in range(self.flows_per_cycle)
        ]
        for kind, target in self._episodes.pop(self._cycle, []):
            burst = self.flows_per_cycle // 4
            if kind == "ddos":
                flows.extend(self._ddos_flow(target) for _ in range(burst))
            else:
                flows.extend(self._worm_flow(target) for _ in range(burst))
        self._rng.shuffle(flows)
        return [FlowRecord(flow, self.to_record(flow, time)) for flow in flows]

    def batches(self, cycles: int) -> Iterator[List[FlowRecord]]:
        for _ in range(cycles):
            yield self.next_batch()
