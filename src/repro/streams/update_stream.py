"""Update-stream model: explicit, non-FIFO deletions (Section 7).

"In case of streams that contain explicit deletions, the data no
longer expire in a first-in-first-out manner." Each arriving record is
assigned a random lifetime; its deletion is issued that many cycles
later, so at any moment the live set is a mix of ages — the expiry
order is unknown in advance, which is precisely why SMA's skyband
cannot be used and TMA (via
:class:`repro.extensions.update_model.UpdateStreamMonitor`) handles
this model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.core.errors import StreamError
from repro.core.tuples import RecordFactory, StreamRecord
from repro.streams.generators import DataDistribution


@dataclass(slots=True)
class UpdateBatch:
    """One cycle of an update stream: inserts plus explicit deletes."""

    time: float
    insertions: List[StreamRecord] = field(default_factory=list)
    deletions: List[StreamRecord] = field(default_factory=list)


class UpdateStreamDriver:
    """Generate insert/delete batches with random record lifetimes.

    Args:
        distribution: point sampler for inserted records.
        rate: insertions per cycle.
        min_lifetime / max_lifetime: each record is deleted a uniform
            number of cycles after insertion within this range —
            deletions interleave out of arrival order.
    """

    def __init__(
        self,
        distribution: DataDistribution,
        rate: int,
        min_lifetime: int = 1,
        max_lifetime: int = 50,
        seed: int = 0,
    ) -> None:
        if rate < 1:
            raise StreamError(f"rate must be >= 1, got {rate}")
        if not (1 <= min_lifetime <= max_lifetime):
            raise StreamError(
                f"need 1 <= min_lifetime <= max_lifetime, got "
                f"{min_lifetime}..{max_lifetime}"
            )
        self.distribution = distribution
        self.rate = rate
        self.min_lifetime = min_lifetime
        self.max_lifetime = max_lifetime
        self._rng = random.Random(seed)
        self._factory = RecordFactory()
        self._cycle = 0
        #: due-cycle -> records to delete then
        self._pending: Dict[int, List[StreamRecord]] = {}

    def next_batch(self) -> UpdateBatch:
        """Advance one cycle: new insertions plus the deletions now due."""
        self._cycle += 1
        time = float(self._cycle)
        insertions = []
        for row in self.distribution.sample_many(self._rng, self.rate):
            record = self._factory.make(row, time)
            insertions.append(record)
            due = self._cycle + self._rng.randint(
                self.min_lifetime, self.max_lifetime
            )
            self._pending.setdefault(due, []).append(record)
        deletions = self._pending.pop(self._cycle, [])
        return UpdateBatch(time=time, insertions=insertions, deletions=deletions)

    def batches(self, cycles: int) -> Iterator[UpdateBatch]:
        for _ in range(cycles):
            yield self.next_batch()

    def drain(self) -> List[StreamRecord]:
        """All records scheduled for future deletion (test helper)."""
        remaining: List[StreamRecord] = []
        for due in sorted(self._pending):
            remaining.extend(self._pending[due])
        return remaining
