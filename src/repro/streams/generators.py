"""Synthetic data distributions (paper Section 8, Figure 13).

- **IND** — attribute values generated independently, uniform in
  [0, 1).
- **ANT** — anti-correlated data "generated in the way described in
  [Börzsönyi et al.]": points concentrate around the hyper-plane
  ``Σ xᵢ = d/2`` so a record good on one dimension is bad on one or
  all of the others. This is the adversarial case for top-k/skyline
  processing: many incomparable records crowd the preference frontier,
  so the top-k computation module must visit many cells before
  accumulating k results (the paper's explanation for the higher ANT
  costs in Figures 16–19).
- **CLU** — a clustered distribution (not in the paper's evaluation,
  provided for the examples and extra tests).

Generation is driven by an explicit :class:`random.Random` so streams
are reproducible and two algorithms can be fed byte-identical data.
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence, Tuple

from repro.core.errors import StreamError


class DataDistribution(abc.ABC):
    """A d-dimensional point sampler over the unit workspace."""

    name: str = "abstract"

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise StreamError(f"dims must be >= 1, got {dims}")
        self.dims = dims

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> Tuple[float, ...]:
        """Draw one point in [0, 1)^dims."""

    def sample_many(
        self, rng: random.Random, count: int
    ) -> List[Tuple[float, ...]]:
        return [self.sample(rng) for _ in range(count)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dims={self.dims})"


class Independent(DataDistribution):
    """IND: independent uniform attributes."""

    name = "ind"

    def sample(self, rng: random.Random) -> Tuple[float, ...]:
        return tuple(rng.random() for _ in range(self.dims))


class AntiCorrelated(DataDistribution):
    """ANT: anti-correlated attributes near the plane Σxᵢ = d/2.

    Following the skyline-benchmark recipe: draw the plane offset from
    a Normal centred at d/2, split it across dimensions by a random
    simplex weighting, and reject points leaving the unit cube. The
    ``spread`` parameter controls how tightly points hug the plane
    (smaller = stronger anti-correlation).
    """

    name = "ant"

    def __init__(self, dims: int, spread: float = 0.0625) -> None:
        super().__init__(dims)
        if spread <= 0:
            raise StreamError(f"spread must be positive, got {spread}")
        self.spread = spread

    def sample(self, rng: random.Random) -> Tuple[float, ...]:
        dims = self.dims
        if dims == 1:
            # Anti-correlation is undefined in 1-D; fall back to the
            # plane-offset marginal.
            value = min(0.999999, max(0.0, rng.gauss(0.5, self.spread)))
            return (value,)
        while True:
            total = rng.gauss(0.5 * dims, self.spread * dims)
            weights = [rng.random() + 1e-9 for _ in range(dims)]
            norm = sum(weights)
            attrs = tuple(total * weight / norm for weight in weights)
            if all(0.0 <= value < 1.0 for value in attrs):
                return attrs


class Clustered(DataDistribution):
    """CLU: Gaussian blobs around a few random cluster centres."""

    name = "clu"

    def __init__(
        self,
        dims: int,
        clusters: int = 5,
        sigma: float = 0.05,
        seed: int = 11,
    ) -> None:
        super().__init__(dims)
        if clusters < 1:
            raise StreamError(f"clusters must be >= 1, got {clusters}")
        centre_rng = random.Random(seed)
        self.sigma = sigma
        self.centres: List[Tuple[float, ...]] = [
            tuple(centre_rng.uniform(0.15, 0.85) for _ in range(dims))
            for _ in range(clusters)
        ]

    def sample(self, rng: random.Random) -> Tuple[float, ...]:
        centre = self.centres[rng.randrange(len(self.centres))]
        return tuple(
            min(0.999999, max(0.0, rng.gauss(mu, self.sigma)))
            for mu in centre
        )


_DISTRIBUTIONS = {
    "ind": Independent,
    "ant": AntiCorrelated,
    "clu": Clustered,
}


def make_distribution(
    name: str, dims: int, **options
) -> DataDistribution:
    """Factory: ``make_distribution("ant", 4)`` etc."""
    key = name.lower()
    if key not in _DISTRIBUTIONS:
        raise StreamError(
            f"unknown distribution {name!r}; choose from "
            f"{sorted(_DISTRIBUTIONS)}"
        )
    return _DISTRIBUTIONS[key](dims, **options)


def correlation_matrix(
    points: Sequence[Sequence[float]],
) -> List[List[float]]:
    """Pearson correlations between dimensions (test/report helper)."""
    dims = len(points[0])
    n = len(points)
    means = [sum(point[i] for point in points) / n for i in range(dims)]
    cov = [[0.0] * dims for _ in range(dims)]
    for point in points:
        for i in range(dims):
            for j in range(dims):
                cov[i][j] += (point[i] - means[i]) * (point[j] - means[j])
    result = [[0.0] * dims for _ in range(dims)]
    for i in range(dims):
        for j in range(dims):
            denom = (cov[i][i] * cov[j][j]) ** 0.5
            result[i][j] = cov[i][j] / denom if denom else 0.0
    return result
