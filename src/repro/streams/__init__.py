"""Stream generators and drivers.

- :mod:`repro.streams.generators` — the paper's synthetic IND
  (independent/uniform) and ANT (anti-correlated) distributions plus a
  clustered extra.
- :mod:`repro.streams.stream` — the sliding-window stream driver that
  produces per-cycle arrival batches (the paper's simulation loop).
- :mod:`repro.streams.update_stream` — the Section 7 update-stream
  model with explicit, non-FIFO deletions.
- :mod:`repro.streams.netflow` / :mod:`repro.streams.stock` — the
  introduction's motivating scenarios as runnable synthetic feeds.
"""

from repro.streams.generators import (
    AntiCorrelated,
    Clustered,
    DataDistribution,
    Independent,
    make_distribution,
)
from repro.streams.stream import StreamDriver
from repro.streams.update_stream import UpdateBatch, UpdateStreamDriver

__all__ = [
    "AntiCorrelated",
    "Clustered",
    "DataDistribution",
    "Independent",
    "StreamDriver",
    "UpdateBatch",
    "UpdateStreamDriver",
    "make_distribution",
]
