"""Paper-style space accounting (Figures 14(b) and 20).

The paper reports megabytes of a C-style implementation: 8-byte floats
and 8-byte pointers/ids, no per-object headers. Python object overhead
(dozens of bytes per float) would swamp the comparison, so this module
walks the *actual live structures* of an algorithm instance and prices
them with the paper's inventory:

- every valid record: d attribute floats + id + arrival time;
- every point-list entry: one pointer;
- every influence-list entry: one query id;
- TMA query state: function coefficients (d) + k × (id, score);
- SMA query state: function coefficients (d) + |skyband| × (id, score,
  dominance counter);
- TSL: d sorted lists of (value, pointer) entries + views of k' ×
  (id, score).

The breakdown mirrors S_TMA / S_SMA of Section 6, so measured curves
are directly comparable with the analytical model and with the
relative shapes in the paper's space figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.algorithms.base import MonitorAlgorithm
from repro.algorithms.brute import BruteForceAlgorithm
from repro.algorithms.sma import SkybandMonitoringAlgorithm
from repro.algorithms.tma import TopKMonitoringAlgorithm
from repro.algorithms.tsl import ThresholdSortedListAlgorithm

#: bytes per float / pointer / id / counter — the paper's C layout.
WORD = 8


@dataclass(slots=True)
class SpaceBreakdown:
    """Byte totals per structural component."""

    records: int = 0
    point_lists: int = 0
    influence_lists: int = 0
    query_state: int = 0
    sorted_lists: int = 0
    #: sliding-window cell-population sketch of the approximate tier
    #: (cell table + exponential-histogram buckets, repro.approx).
    sketch: int = 0

    @property
    def total(self) -> int:
        return (
            self.records
            + self.point_lists
            + self.influence_lists
            + self.query_state
            + self.sorted_lists
            + self.sketch
        )

    @property
    def total_mb(self) -> float:
        return self.total / (1024.0 * 1024.0)

    def as_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "point_lists": self.point_lists,
            "influence_lists": self.influence_lists,
            "query_state": self.query_state,
            "sorted_lists": self.sorted_lists,
            "sketch": self.sketch,
            "total": self.total,
        }


def _record_bytes(count: int, dims: int) -> int:
    # d attributes + id + arrival time
    return count * (dims + 2) * WORD


def estimate_space(algorithm: MonitorAlgorithm) -> SpaceBreakdown:
    """Price the live structures of ``algorithm`` in paper bytes."""
    shard_spaces = getattr(algorithm, "shard_spaces", None)
    if shard_spaces is not None:
        # Sharded execution: stream state is replicated per shard, so
        # the honest footprint is the sum of the per-shard breakdowns.
        total = SpaceBreakdown()
        for breakdown in shard_spaces():
            total.records += breakdown.records
            total.point_lists += breakdown.point_lists
            total.influence_lists += breakdown.influence_lists
            total.query_state += breakdown.query_state
            total.sorted_lists += breakdown.sorted_lists
            total.sketch += breakdown.sketch
        return total
    if isinstance(algorithm, (TopKMonitoringAlgorithm, SkybandMonitoringAlgorithm)):
        return _grid_space(algorithm)
    if isinstance(algorithm, ThresholdSortedListAlgorithm):
        return _tsl_space(algorithm)
    if isinstance(algorithm, BruteForceAlgorithm):
        breakdown = SpaceBreakdown()
        breakdown.records = _record_bytes(
            len(algorithm.valid_records()), algorithm.dims
        )
        return breakdown
    raise TypeError(f"no space model for {type(algorithm).__name__}")


def _grid_space(algorithm) -> SpaceBreakdown:
    breakdown = SpaceBreakdown()
    points = 0
    influence_entries = 0
    for cell in algorithm.grid.cells():
        points += len(cell.points)
        influence_entries += len(cell.influence)
    breakdown.records = _record_bytes(points, algorithm.dims)
    breakdown.point_lists = points * WORD
    breakdown.influence_lists = influence_entries * WORD
    per_query_entry_words = (
        3 if isinstance(algorithm, SkybandMonitoringAlgorithm) else 2
    )  # SMA also stores the dominance counter (Section 6)
    state_bytes = 0
    sizes = algorithm.result_state_sizes()
    for query in algorithm.queries():
        entries = sizes.get(query.qid, query.k)
        state_bytes += (
            algorithm.dims + per_query_entry_words * entries
        ) * WORD
    breakdown.query_state = state_bytes
    sketch = getattr(algorithm, "sketch", None)
    if sketch is not None:
        # The approximate tier's per-cell summaries: 2 words per
        # tracked cell + 2 per live EH bucket (timestamp, size) — the
        # sketch's own machine-independent accounting. Reported per
        # shard: each shard keeps its own full sketch (stream state is
        # replicated), so the sharded sum above counts every copy.
        breakdown.sketch = sketch.space_words() * WORD
    return breakdown


def _tsl_space(algorithm: ThresholdSortedListAlgorithm) -> SpaceBreakdown:
    breakdown = SpaceBreakdown()
    entries = algorithm.sorted_list_entries()  # d lists × N records
    records = entries // max(1, algorithm.dims)
    breakdown.records = _record_bytes(records, algorithm.dims)
    # each sorted-list entry: attribute value + pointer (Figure 3)
    breakdown.sorted_lists = entries * 2 * WORD
    state_bytes = 0
    sizes = algorithm.result_state_sizes()
    for query in algorithm.queries():
        entries_q = sizes.get(query.qid, query.k)
        state_bytes += (algorithm.dims + 2 * entries_q) * WORD
    breakdown.query_state = state_bytes
    return breakdown
