"""Findings, rule metadata, and the JSON report envelope.

The JSON schema is versioned (``repro-analysis-check/1``) and stable:
CI archives the ``--json`` output per commit, so downstream tooling can
diff reports across revisions.  The ``rules`` array always lists every
*registered* rule — a clean run still documents the full inventory that
was enforced, which is what makes an "exit 0" report auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

SCHEMA = "repro-analysis-check/1"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class RuleInfo:
    """Static metadata describing a registered rule."""

    id: str
    name: str
    family: str
    description: str

    def to_json(self) -> Dict[str, str]:
        return {
            "id": self.id,
            "name": self.name,
            "family": self.family,
            "description": self.description,
        }


@dataclass
class Report:
    """Outcome of one analyzer run over a set of paths."""

    paths: List[str]
    files: List[str]
    rules: List[RuleInfo]
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "paths": list(self.paths),
            "files_scanned": len(self.files),
            "rules": [rule.to_json() for rule in self.rules],
            "findings": [f.to_json() for f in sorted(self.findings)],
            "suppressed": [f.to_json() for f in sorted(self.suppressed)],
            "summary": {
                "clean": self.clean,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "files": len(self.files),
                "by_rule": self.by_rule(),
            },
        }

    def render_human(self) -> str:
        lines: List[str] = []
        for finding in sorted(self.findings):
            lines.append(finding.render())
        lines.append(
            f"checked {len(self.files)} files against "
            f"{len(self.rules)} rules: "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)


def render_rule_table(rules: Sequence[RuleInfo]) -> str:
    """Human-readable rule inventory for ``--list-rules``."""
    lines = []
    for rule in sorted(rules, key=lambda r: r.id):
        lines.append(f"{rule.id}  [{rule.family}]  {rule.name}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)
