"""AST helpers shared by all rules: parent links, names, lock context.

Everything here is purely syntactic.  The helpers err on the side of
*under*-matching (heuristics keyed to this repo's naming conventions)
because a project-invariant linter that cries wolf gets suppressed
wholesale and stops guarding anything.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

# Final attribute/name segments that denote a synchronisation primitive.
LOCK_NAME_RE = re.compile(r"(^|_)(lock|locks|cond|condition|mutex|sem)$")

# threading / multiprocessing constructors that create lock-like objects.
LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}


class ParentMap:
    """Child -> parent links for one tree, plus upward traversal."""

    def __init__(self, tree: ast.AST) -> None:
        self._parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def ancestry(self, node: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
        """Yield ``(ancestor, child_on_path)`` pairs walking upward."""
        child = node
        current = self._parents.get(node)
        while current is not None:
            yield current, child
            child = current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionNode]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, FUNCTION_NODES):
                return ancestor
        return None

    def enclosing_function_names(self, node: ast.AST) -> List[str]:
        """Names of all enclosing functions, innermost first."""
        return [
            ancestor.name
            for ancestor in self.ancestors(node)
            if isinstance(ancestor, FUNCTION_NODES)
        ]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """Final segment of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def receiver_of(node: ast.AST) -> Optional[ast.AST]:
    """The object a method is called on (``a.b`` of ``a.b.c(...)``)."""
    if isinstance(node, ast.Attribute):
        return node.value
    return None


def name_tokens(node: ast.AST) -> Set[str]:
    """Lower-cased ``_``-split tokens of every identifier in a chain.

    ``self._out_queue[qid]`` -> ``{"self", "out", "queue"}`` — used by
    naming heuristics; Subscript/Call layers are peeled off.
    """
    tokens: Set[str] = set()
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, ast.Name):
            tokens.update(t for t in current.id.lower().split("_") if t)
            current = None
        elif isinstance(current, ast.Attribute):
            tokens.update(t for t in current.attr.lower().split("_") if t)
            current = current.value
        elif isinstance(current, (ast.Subscript, ast.Starred)):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            current = None
    return tokens


def is_lock_like_name(node: ast.AST) -> bool:
    """Heuristic: the chain's final segment names a lock primitive."""
    final = terminal_name(node)
    return final is not None and bool(LOCK_NAME_RE.search(final.lower()))


def lock_factory_of(value: ast.AST) -> Optional[str]:
    """``"RLock"`` for ``threading.RLock()`` etc., else ``None``."""
    if not isinstance(value, ast.Call):
        return None
    final = terminal_name(value.func)
    if final in LOCK_FACTORIES:
        return final
    return None


def module_lock_names(tree: ast.Module) -> Set[str]:
    """Dotted names assigned a lock factory anywhere in the module.

    Collects both ``self._lock = threading.RLock()`` attribute targets
    and plain ``guard = threading.Lock()`` local/global bindings.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if lock_factory_of(node.value) is None:
            continue
        for target in node.targets:
            dotted = dotted_name(target)
            if dotted is not None:
                names.add(dotted)
    return names


def held_locks(
    node: ast.AST,
    parents: ParentMap,
    known_locks: Set[str],
) -> List[str]:
    """Dotted names of lock-like objects held at ``node``.

    A lock is "held" when ``node`` sits in the *body* of a ``with``
    statement whose context expression is a known lock binding or has a
    lock-like name.  Purely lexical — ``acquire()``/``release()`` pairs
    are not tracked (the codebase uses ``with`` exclusively).
    """
    held: List[str] = []
    for ancestor, child in parents.ancestry(node):
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        if not any(child is stmt for stmt in ancestor.body):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            dotted = dotted_name(expr)
            if dotted is not None and dotted in known_locks:
                held.append(dotted)
            elif is_lock_like_name(expr):
                held.append(dotted or ast.dump(expr))
    return held


def assigned_lambda_or_local(
    func: FunctionNode,
) -> Tuple[Set[str], Set[str]]:
    """Names bound (within ``func``) to lambdas / nested defs / classes.

    Returns ``(lambda_names, local_def_names)`` where the latter covers
    ``def``/``class`` statements nested directly in ``func``'s body
    scope — none of which survive pickling across a process boundary.
    """
    lambdas: Set[str] = set()
    local_defs: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lambdas.add(target.id)
        elif isinstance(node, FUNCTION_NODES) and node is not func:
            local_defs.add(node.name)
        elif isinstance(node, ast.ClassDef):
            local_defs.add(node.name)
    return lambdas, local_defs


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def walk_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield node


def statements_of(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    for stmt in body:
        yield from ast.walk(stmt)
