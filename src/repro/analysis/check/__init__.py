"""Project-invariant static analyzer for the repro tree.

Usage::

    python -m repro.analysis.check [--json] [paths...]

Three rule families guard the invariants the test suite can only
sample (see ``docs/ANALYSIS.md`` for the full catalogue):

* **determinism** (DET1xx) — hash-order iteration, unkeyed float
  sorts, backend-dependent accumulation, lossy wire formatting;
* **locks** (LOCK2xx) — engine-RLock discipline and
  blocking/callback hygiene inside critical sections;
* **process** (PROC3xx) — pickle and shared-memory safety across the
  shard worker boundary.

Per-line suppression: ``# repro: ignore[RULE1,RULE2]`` (trailing, or
on its own line to cover the next one).  Suppressed findings are still
reported, under ``suppressed``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import repro.analysis.check.rules  # noqa: F401  (registers all rules)
from repro.analysis.check.registry import Rule, all_rules, known_rule_ids
from repro.analysis.check.report import Finding, Report, RuleInfo, SCHEMA
from repro.analysis.check.source import (
    CheckError,
    SourceModule,
    collect_files,
    display_name,
    load_module,
)

__all__ = [
    "CheckError",
    "Finding",
    "Report",
    "Rule",
    "RuleInfo",
    "SCHEMA",
    "SourceModule",
    "all_rules",
    "known_rule_ids",
    "run_check",
]


def _select_rules(
    select: Optional[Iterable[str]],
    ignore: Optional[Iterable[str]],
) -> List[Rule]:
    rules = all_rules()
    known = set(known_rule_ids())
    if select is not None:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - known
        if unknown:
            raise CheckError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore is not None:
        dropped = {rule_id.upper() for rule_id in ignore}
        unknown = dropped - known
        if unknown:
            raise CheckError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def run_check(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Report:
    """Run the analyzer over ``paths`` and return a :class:`Report`.

    ``paths`` may mix files and directories; directories are walked
    recursively for ``.py`` files.  ``select``/``ignore`` narrow the
    rule set by ID.  Raises :class:`CheckError` on unreadable or
    syntactically invalid input.
    """
    rules = _select_rules(select, ignore)
    files = collect_files(paths)
    report = Report(
        paths=[str(p) for p in paths],
        files=[display_name(f) for f in files],
        rules=[rule.info() for rule in all_rules()],
    )
    for path in files:
        module = load_module(path, display_name(path))
        for rule in rules:
            for finding in rule.check(module):
                if module.is_suppressed(finding.line, finding.rule):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    return report
