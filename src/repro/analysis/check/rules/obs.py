"""Observability rules (OBS4xx).

The observability layer's overhead contract (docs/OBSERVABILITY.md) is
that instrumentation costs nothing when disabled: clock reads belong
at cycle granularity (the engine, the tracer's spans) — never once per
record.  A ``time.perf_counter()`` inside a per-record hot loop taxes
every benchmark whether or not anyone is looking at the numbers, and
is exactly the drift these rules guard against in the modules the cost
model times.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.check.astutil import (
    FUNCTION_NODES,
    dotted_name,
    name_tokens,
    terminal_name,
)
from repro.analysis.check.registry import Rule, register
from repro.analysis.check.report import Finding
from repro.analysis.check.source import SourceModule

# ---------------------------------------------------------------------------
# OBS401 — per-record clock reads in hot loops
# ---------------------------------------------------------------------------

#: timing calls that read a clock (``time.<name>`` or the bare name
#: imported from ``time``).
_CLOCK_CALLS = {
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}

#: identifier tokens marking a deadline/timeout wait loop — polling a
#: clock against a deadline is flow control, not instrumentation.
_WAIT_TOKENS = {"deadline", "timeout", "remaining", "expires"}


def _is_hot_module(module: SourceModule) -> bool:
    """The modules whose inner loops the cost model times per record."""
    return (
        module.imports_module("repro.core.batch")
        or module.imports_module("repro.grid.traversal")
        or module.imports_module("repro.approx.sketch")
        or "/grid/" in module.path.as_posix()
    )


def _is_clock_call(node: ast.Call) -> bool:
    final = terminal_name(node.func)
    if final not in _CLOCK_CALLS:
        return False
    dotted = dotted_name(node.func)
    return dotted == final or dotted == f"time.{final}"


def _statement_tokens(module: SourceModule, node: ast.AST) -> Set[str]:
    """Identifier tokens of the statement holding ``node``.

    For a call inside a ``while`` test, only the test is scanned — the
    loop body would drag in unrelated names.
    """
    for ancestor, child in module.parents.ancestry(node):
        if isinstance(ancestor, (ast.While, ast.If)) and child is (
            ancestor.test
        ):
            return name_tokens(ancestor.test) | _walk_tokens(ancestor.test)
        if isinstance(ancestor, ast.stmt):
            return _walk_tokens(ancestor)
    return set()


def _walk_tokens(root: ast.AST) -> Set[str]:
    tokens: Set[str] = set()
    for node in ast.walk(root):
        if isinstance(node, (ast.Name, ast.Attribute)):
            tokens |= name_tokens(node)
    return tokens


def _enabled_gated(module: SourceModule, node: ast.AST) -> bool:
    """True when an enclosing ``if`` tests a ``.enabled``-style flag.

    The blessed pattern::

        if tracer.enabled:
            started = time.perf_counter()
    """
    for ancestor in module.parents.ancestors(node):
        if isinstance(ancestor, FUNCTION_NODES):
            return False  # don't credit gates outside this function
        if not isinstance(ancestor, ast.If):
            continue
        for test_node in ast.walk(ancestor.test):
            if (
                isinstance(test_node, (ast.Name, ast.Attribute))
                and terminal_name(test_node) in ("enabled", "traced")
            ):
                return True
    return False


def _enclosing_loop(module: SourceModule, node: ast.AST) -> Optional[ast.AST]:
    """The innermost For/While loop whose *body* holds ``node``.

    A clock read in a ``while`` *test* still counts (it executes once
    per iteration); comprehension loops count too.
    """
    for ancestor in module.parents.ancestors(node):
        if isinstance(ancestor, FUNCTION_NODES):
            return None
        if isinstance(ancestor, (ast.For, ast.While)):
            return ancestor
        if isinstance(ancestor, (ast.ListComp, ast.SetComp, ast.DictComp)):
            return ancestor
    return None


@register
class HotLoopClockRule(Rule):
    id = "OBS401"
    name = "hot-loop-clock-read"
    family = "observability"
    description = (
        "clock read (time.perf_counter/monotonic/process_time) inside "
        "a loop of a cost-model-timed module; hoist it to cycle "
        "granularity or gate it behind a tracer .enabled check so "
        "disabled instrumentation costs nothing per record"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not _is_hot_module(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not _is_clock_call(node):
                continue
            if _enclosing_loop(module, node) is None:
                continue
            if _enabled_gated(module, node):
                continue
            # Deadline polling (``remaining = deadline - monotonic()``)
            # is flow control, not instrumentation.
            if _statement_tokens(module, node) & _WAIT_TOKENS:
                continue
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "per-iteration clock read in a hot loop; time the "
                    "whole loop once, or gate on tracer.enabled",
                )
            )
        return findings
