"""Lock-discipline rules (LOCK2xx).

``MonitorServer`` runs three planes concurrently (asyncio event loop,
engine executor, delivery hub threads); the invariant that keeps them
coherent is simple: *every* touch of mutable engine state goes through
the engine ``RLock``, and nothing slow or re-entrant happens while any
lock is held.  These rules enforce both halves statically, using the
wrapper-aware call graph in :mod:`repro.analysis.check.callgraph`.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.check.astutil import (
    dotted_name,
    held_locks,
    is_lock_like_name,
    module_lock_names,
    name_tokens,
    terminal_name,
)
from repro.analysis.check.callgraph import (
    ClassSummary,
    reachable_unlocked,
    summarize_class,
    wrapper_argument_nodes,
)
from repro.analysis.check.registry import Rule, register
from repro.analysis.check.report import Finding
from repro.analysis.check.source import SourceModule

# ---------------------------------------------------------------------------
# LOCK201 — engine state touched outside the engine RLock
# ---------------------------------------------------------------------------

# The engine facade attribute guarded by the RLock, and the mutable
# attributes on it that must never be read without the lock.  Immutable
# configuration (algorithm, dims, shards, window, ...) is exempt.
_ENGINE_ATTR = "monitor"
_MUTABLE_ENGINE_ATTRS = {
    "query_table",
    "cycle_seconds",
    "setup_seconds",
    "mutation_seconds",
}


def _entrypoints(summary: ClassSummary) -> Set[str]:
    """Server ops: ``_op_*`` handlers plus the public surface."""
    names: Set[str] = set()
    for name in summary.methods:
        if name.startswith("_op_"):
            names.add(name)
        elif not name.startswith("_"):
            names.add(name)
    return names


@register
class UnlockedEngineAccessRule(Rule):
    id = "LOCK201"
    name = "unlocked-engine-access"
    family = "locks"
    description = (
        "engine-state call or mutable-attribute read reachable from a "
        "server op without holding the engine RLock; route it through "
        "the locked executor (self._engine / with self._lock)"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> List[Finding]:
        summary = summarize_class(cls, module.parents)
        # Scope: classes that own an engine RLock *and* hold the engine
        # facade.  (DeliveryHub has a plain Lock and is exempt — its
        # monitor reference is wiring, not guarded state.)
        if not summary.rlock_names:
            return []
        if not summary.references_self_attr(_ENGINE_ATTR):
            return []

        entry = _entrypoints(summary)
        origin = reachable_unlocked(summary, module.parents, entry)
        wrapper_refs = {f"self.{w}" for w in summary.wrappers}
        findings: List[Finding] = []

        for name in sorted(origin):
            func = summary.methods[name]
            if name == "__init__":
                continue
            consumed = wrapper_argument_nodes(func, wrapper_refs)
            for node in ast.walk(func):
                if node in consumed:
                    continue
                hit = self._engine_access(node)
                if hit is None:
                    continue
                if held_locks(node, module.parents, summary.lock_names):
                    continue
                via = (
                    "" if origin[name] == name
                    else f" (reachable from {origin[name]})"
                )
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"{hit} outside the engine lock in "
                        f"{summary.name}.{name}{via}",
                    )
                )
        return findings

    def _engine_access(self, node: ast.AST) -> Optional[str]:
        """Describe an engine-state access, or ``None``."""
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None and dotted.startswith(
                f"self.{_ENGINE_ATTR}."
            ):
                return f"engine call {dotted}(...)"
            return None
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _MUTABLE_ENGINE_ATTRS
            and isinstance(node.ctx, ast.Load)
            and dotted_name(node.value) == f"self.{_ENGINE_ATTR}"
        ):
            return f"read of mutable self.monitor.{node.attr}"
        return None


# ---------------------------------------------------------------------------
# LOCK202 — blocking call while a lock is held
# ---------------------------------------------------------------------------

_ALWAYS_BLOCKING_ATTRS = {
    "recv",
    "recv_bytes",
    "accept",
    "connect",
    "sendall",
}
_QUEUE_TOKENS = {"queue", "q", "slot", "slots", "inbox", "outbox", "backlog"}
_CONN_TOKENS = {"conn", "conns", "connection", "connections", "sock",
                "socket", "pipe", "pipes"}
_JOINABLE_TOKENS = {"thread", "threads", "proc", "process", "processes",
                    "worker", "workers", "reader", "consumer", "pool"}
_BLOCKING_DOTTED = {
    "time.sleep",
    "select.select",
    "connection.wait",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
}


def _kwarg_is_false(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name:
            return (
                isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            )
    return False


def _blocking_reason(call: ast.Call, held: List[str]) -> Optional[str]:
    dotted = dotted_name(call.func)
    if dotted in _BLOCKING_DOTTED:
        return f"{dotted}(...) blocks"
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    receiver = call.func.value
    recv_dotted = dotted_name(receiver)
    tokens = name_tokens(receiver)
    if attr in _ALWAYS_BLOCKING_ATTRS:
        return f".{attr}() blocks on I/O"
    if attr == "send" and tokens & _CONN_TOKENS:
        return ".send() blocks on a pipe/socket"
    if attr in ("put", "get") and tokens & _QUEUE_TOKENS:
        if _kwarg_is_false(call, "block"):
            return None
        return f"queue .{attr}() blocks until space/data"
    if attr == "join" and tokens & _JOINABLE_TOKENS:
        return ".join() blocks until the thread/process exits"
    if attr == "poll" and tokens & _CONN_TOKENS and call.args:
        return ".poll(timeout) blocks"
    if attr in ("wait", "wait_for"):
        # Waiting on the very condition you hold is the intended
        # pattern; waiting on anything else while holding a lock is a
        # latent deadlock.
        if recv_dotted is not None and recv_dotted in held:
            return None
        if is_lock_like_name(receiver) or tokens & _CONN_TOKENS:
            return f".{attr}() on {recv_dotted or 'an object'} not held"
    return None


@register
class BlockingUnderLockRule(Rule):
    id = "LOCK202"
    name = "blocking-under-lock"
    family = "locks"
    description = (
        "blocking call (socket/pipe I/O, queue put/get, sleep, join, "
        "foreign wait) inside a with-lock body; move the slow work "
        "outside the critical section"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        known = module_lock_names(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            held = held_locks(node, module.parents, known)
            if not held:
                continue
            reason = _blocking_reason(node, held)
            if reason is None:
                continue
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{reason} while holding {', '.join(sorted(set(held)))}",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# LOCK203 — user-callback dispatch while a lock is held
# ---------------------------------------------------------------------------

_CALLBACK_NAMES = {"callback", "cb", "handler", "hook", "dispatch"}
_CALLBACK_EXACT = {"_callback", "_deliver"}


def _is_callback_ref(func: ast.AST) -> bool:
    final = terminal_name(func)
    if final is None:
        return False
    if final in _CALLBACK_EXACT:
        return True
    stripped = final.lstrip("_")
    if stripped in _CALLBACK_NAMES:
        return True
    return stripped.startswith("on_")


@register
class CallbackUnderLockRule(Rule):
    id = "LOCK203"
    name = "callback-under-lock"
    family = "locks"
    description = (
        "user-supplied callback/handler/hook invoked while a lock is "
        "held; snapshot under the lock, call outside it (re-entrant "
        "subscribers deadlock otherwise)"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        known = module_lock_names(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_callback_ref(node.func):
                continue
            held = held_locks(node, module.parents, known)
            if not held:
                continue
            name = dotted_name(node.func) or terminal_name(node.func)
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"callback {name}(...) invoked while holding "
                    f"{', '.join(sorted(set(held)))}; dispatch outside "
                    "the lock",
                )
            )
        return findings
