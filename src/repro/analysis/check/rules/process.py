"""Process-boundary rules (PROC3xx) for the sharded tier.

Shard workers are spawned processes fed over duplex pipes; cycle
payloads ride shared memory when numpy is available.  Three things go
wrong at this boundary in practice: unpicklable objects in an RPC
payload (lambdas, closures, local classes), leaked shared-memory
segments (missing close/unlink on an exit path), and spawn-unsafe
process targets.  All three fail only at runtime, on the *spawn* start
method, on some platforms — exactly the kind of bug a static pass
should catch instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.check.astutil import (
    FUNCTION_NODES,
    FunctionNode,
    assigned_lambda_or_local,
    call_keyword,
    dotted_name,
    name_tokens,
    terminal_name,
)
from repro.analysis.check.registry import Rule, register
from repro.analysis.check.report import Finding
from repro.analysis.check.source import SourceModule

_PIPE_TOKENS = {"conn", "conns", "connection", "connections", "pipe",
                "pipes", "child", "parent", "channel", "channels"}


def _is_multiprocessing_module(module: SourceModule) -> bool:
    return (
        module.imports_module("multiprocessing")
        or module.imports_module("multiprocessing.connection")
        or module.imports_module("multiprocessing.shared_memory")
        or "multiprocessing" in module.text
    )


def _unpicklable_names(func: Optional[FunctionNode]) -> Tuple[Set[str], Set[str]]:
    if func is None:
        return set(), set()
    return assigned_lambda_or_local(func)


def _payload_violations(
    payload: ast.AST,
    lambda_names: Set[str],
    local_defs: Set[str],
) -> Iterator[Tuple[ast.AST, str]]:
    for sub in ast.walk(payload):
        if isinstance(sub, ast.Lambda):
            yield sub, "lambda in an RPC payload is not picklable"
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in lambda_names:
                yield (
                    sub,
                    f"'{sub.id}' is bound to a lambda; lambdas are not "
                    "picklable across the worker pipe",
                )
            elif sub.id in local_defs:
                yield (
                    sub,
                    f"'{sub.id}' is defined inside this function; local "
                    "defs/classes are not picklable across the pipe",
                )


# ---------------------------------------------------------------------------
# PROC301 — unpicklable objects in pipe payloads
# ---------------------------------------------------------------------------


@register
class UnpicklablePayloadRule(Rule):
    id = "PROC301"
    name = "unpicklable-payload"
    family = "process"
    description = (
        "pipe .send() payload contains a lambda, nested def, or local "
        "class — none survive pickling to a worker process; ship a "
        "module-level callable or plain data instead"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not _is_multiprocessing_module(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("send", "send_bytes"):
                continue
            if not name_tokens(node.func.value) & _PIPE_TOKENS:
                continue
            func = module.parents.enclosing_function(node)
            lambda_names, local_defs = _unpicklable_names(func)
            for arg in node.args:
                for sub, message in _payload_violations(
                    arg, lambda_names, local_defs
                ):
                    findings.append(
                        self.finding(
                            module,
                            getattr(sub, "lineno", node.lineno),
                            getattr(sub, "col_offset", node.col_offset),
                            message,
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# PROC302 — shared-memory lifecycle
# ---------------------------------------------------------------------------


def _is_shared_memory_call(node: ast.Call) -> bool:
    return terminal_name(node.func) == "SharedMemory"


def _bound_name(module: SourceModule, call: ast.Call) -> Optional[str]:
    parent = module.parents.parent(call)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    return None


def _escapes_enclosing(call: ast.Call, module: SourceModule) -> bool:
    """Bare (unassigned) SharedMemory call: returned or passed along."""
    parent = module.parents.parent(call)
    if isinstance(parent, (ast.Return, ast.Yield)):
        return True
    if isinstance(parent, ast.Call):
        return True
    if isinstance(parent, (ast.Tuple, ast.List, ast.Dict)):
        grand = module.parents.parent(parent)
        return isinstance(grand, (ast.Return, ast.Yield, ast.Call))
    return False


def _name_usage(
    func: FunctionNode,
    var: str,
    module: SourceModule,
) -> Tuple[bool, Set[str]]:
    """Scan ``func`` for what happens to binding ``var``.

    Returns ``(escapes, lifecycle_methods_called)`` where lifecycle
    methods are ``close``/``unlink`` invoked directly on the name.
    """
    escapes = False
    lifecycle: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Name) or node.id != var:
            continue
        if not isinstance(node.ctx, ast.Load):
            continue
        parent = module.parents.parent(node)
        if isinstance(parent, ast.Attribute):
            grand = module.parents.parent(parent)
            if (
                isinstance(grand, ast.Call)
                and grand.func is parent
                and parent.attr in ("close", "unlink")
            ):
                lifecycle.add(parent.attr)
            continue
        if isinstance(parent, (ast.Return, ast.Yield)):
            escapes = True
        elif isinstance(parent, ast.Call):
            escapes = True  # handed to another owner
        elif isinstance(parent, (ast.Tuple, ast.List, ast.Dict)):
            escapes = True
        elif isinstance(parent, ast.Starred):
            escapes = True
    # Stored on an object attribute (self._shm = shm) also escapes.
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, (ast.Attribute, ast.Subscript))
            for t in node.targets
        ):
            value = node.value
            if isinstance(value, ast.Name) and value.id == var:
                escapes = True
    return escapes, lifecycle


@register
class SharedMemoryLifecycleRule(Rule):
    id = "PROC302"
    name = "shm-lifecycle"
    family = "process"
    description = (
        "SharedMemory segment neither escapes the function nor is "
        "closed on every exit path (create=True additionally needs "
        "unlink); leaked segments survive the process on /dev/shm"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not _is_multiprocessing_module(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_shared_memory_call(node):
                continue
            create_kw = call_keyword(node, "create")
            creates = (
                isinstance(create_kw, ast.Constant)
                and create_kw.value is True
            )
            var = _bound_name(module, node)
            if var is None:
                if _escapes_enclosing(node, module):
                    continue
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "SharedMemory segment is dropped on the floor; "
                        "bind it and close (and unlink, if created) it",
                    )
                )
                continue
            func = module.parents.enclosing_function(node)
            if func is None:
                continue  # module-level: assume deliberate singleton
            escapes, lifecycle = _name_usage(func, var, module)
            if escapes:
                continue
            if creates:
                missing = {"close", "unlink"} - lifecycle
                if missing:
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"created segment '{var}' is missing "
                            f"{'/'.join(sorted(missing))}() before the "
                            "function exits",
                        )
                    )
            elif "close" not in lifecycle:
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"attached segment '{var}' is never closed; "
                        "close() it in a finally block",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# PROC303 — spawn-unsafe process targets
# ---------------------------------------------------------------------------

_SUBMIT_ATTRS = {"submit", "apply_async", "map_async"}


@register
class SpawnUnsafeTargetRule(Rule):
    id = "PROC303"
    name = "spawn-unsafe-target"
    family = "process"
    description = (
        "Process target / pool submission is a lambda or a function "
        "defined inside the caller; the spawn start method cannot "
        "import it in the child — use a module-level function"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not _is_multiprocessing_module(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target: Optional[ast.expr] = None
            if terminal_name(node.func) == "Process":
                target = call_keyword(node, "target")
            elif terminal_name(node.func) in _SUBMIT_ATTRS and node.args:
                target = node.args[0]
            if target is None:
                continue
            func = module.parents.enclosing_function(node)
            lambda_names, local_defs = _unpicklable_names(func)
            message: Optional[str] = None
            if isinstance(target, ast.Lambda):
                message = "process target is a lambda"
            elif isinstance(target, ast.Name):
                if target.id in lambda_names:
                    message = (
                        f"process target '{target.id}' is bound to a "
                        "lambda"
                    )
                elif target.id in local_defs:
                    message = (
                        f"process target '{target.id}' is defined "
                        "inside the calling function"
                    )
            if message is not None:
                findings.append(
                    self.finding(
                        module,
                        target.lineno,
                        target.col_offset,
                        f"{message}; spawn-based multiprocessing cannot "
                        "pickle it",
                    )
                )
        return findings
