"""Rule modules.  Importing this package registers every rule."""

from repro.analysis.check.rules import determinism, locks, process

__all__ = ["determinism", "locks", "process"]
