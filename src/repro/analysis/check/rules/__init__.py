"""Rule modules.  Importing this package registers every rule."""

from repro.analysis.check.rules import determinism, locks, obs, process

__all__ = ["determinism", "locks", "obs", "process"]
