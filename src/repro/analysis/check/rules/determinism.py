"""Determinism rules (DET1xx).

The reproduction's headline guarantee is bitwise-identical output for a
given seed — across runs, across shard counts, and across the numpy /
pure-python batch backends (see docs/PERFORMANCE.md).  These rules flag
the syntactic patterns that historically break that guarantee: hash
-order iteration feeding ordered output, unkeyed sorts of float-scored
data, backend-dependent accumulation order, and lossy float formatting
on the wire.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from repro.analysis.check.astutil import (
    FUNCTION_NODES,
    dotted_name,
    name_tokens,
    terminal_name,
)
from repro.analysis.check.registry import Rule, register
from repro.analysis.check.report import Finding
from repro.analysis.check.source import SourceModule

# ---------------------------------------------------------------------------
# DET101 — set / dict.keys() iteration feeding ordered output
# ---------------------------------------------------------------------------

# Method calls that append to order-sensitive containers.
_ORDER_SINKS = {
    "append",
    "extend",
    "insert",
    "appendleft",
    "heappush",
    "heapreplace",
    "heappushpop",
    "setdefault",
}

# Consumers that make iteration order irrelevant again.
_ORDER_FREE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "any",
    "all",
    "len",
    "min",
    "max",
    "dict",
    "Counter",
}


def _is_set_expr(expr: ast.AST, local_sets: Set[str]) -> bool:
    """True when ``expr`` evaluates to a set-like (hash-ordered) view."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        final = terminal_name(expr.func)
        if final in ("set", "frozenset"):
            return True
        if final == "keys" and isinstance(expr.func, ast.Attribute):
            return True
        return False
    if isinstance(expr, ast.Name):
        return expr.id in local_sets
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(expr.left, local_sets) or _is_set_expr(
            expr.right, local_sets
        )
    return False


def _local_set_names(scope: ast.AST) -> Set[str]:
    """Names bound to an obviously set-valued expression in ``scope``."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _builds_ordered_output(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                final = terminal_name(node.func)
                if final in _ORDER_SINKS:
                    return True
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            elif isinstance(node, ast.AugAssign):
                return True
    return False


@register
class SetIterationRule(Rule):
    id = "DET101"
    name = "set-iteration-order"
    family = "determinism"
    description = (
        "iteration over a set or dict-keys view feeds ordered output "
        "(list/heap/yield/accumulator); iterate a sorted() or keyed "
        "sequence instead"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, FUNCTION_NODES)
        )
        flagged: Set[int] = set()
        for scope in scopes:
            local_sets = _local_set_names(scope)
            for node in ast.walk(scope):
                if isinstance(node, FUNCTION_NODES) and node is not scope:
                    continue  # handled as its own scope
                if isinstance(node, ast.For):
                    if not _is_set_expr(node.iter, local_sets):
                        continue
                    if not _builds_ordered_output(node.body):
                        continue
                    if node.lineno in flagged:
                        continue
                    flagged.add(node.lineno)
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            "for-loop over a set feeds ordered output; "
                            "iterate sorted(...) for deterministic order",
                        )
                    )
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    if not any(
                        _is_set_expr(gen.iter, local_sets)
                        for gen in node.generators
                    ):
                        continue
                    parent = module.parents.parent(node)
                    if isinstance(parent, ast.Call):
                        consumer = terminal_name(parent.func)
                        if consumer in _ORDER_FREE_CONSUMERS:
                            continue
                    if isinstance(node, ast.GeneratorExp) and not isinstance(
                        parent, ast.Call
                    ):
                        continue  # lazily consumed; judged at the sink
                    if node.lineno in flagged:
                        continue
                    flagged.add(node.lineno)
                    findings.append(
                        self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            "comprehension over a set builds an ordered "
                            "sequence; wrap the source in sorted(...)",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# DET102 — unkeyed sorted()/.sort() on float-tie-prone data
# ---------------------------------------------------------------------------

_TIE_PRONE_TOKENS = {
    "score",
    "scores",
    "scored",
    "entry",
    "entries",
    "result",
    "results",
    "candidate",
    "candidates",
    "ranked",
    "topk",
    "skyband",
    "heap",
}


def _tie_prone(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Call):
        final = terminal_name(expr.func)
        if final in ("values", "items") and isinstance(
            expr.func, ast.Attribute
        ):
            return _tie_prone(expr.func.value)
        return False
    return bool(name_tokens(expr) & _TIE_PRONE_TOKENS)


@register
class UnkeyedFloatSortRule(Rule):
    id = "DET102"
    name = "unkeyed-float-sort"
    family = "determinism"
    description = (
        "unkeyed sorted()/.sort() on float-scored data compares raw "
        "tuples; supply an explicit (score, rid)-style key so float "
        "ties break on the integer id"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            has_key = any(kw.arg == "key" for kw in node.keywords)
            if has_key:
                continue
            func_final = terminal_name(node.func)
            target: Optional[ast.AST] = None
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
                and node.args
            ):
                target = node.args[0]
            elif (
                func_final == "sort"
                and isinstance(node.func, ast.Attribute)
                and not node.args
            ):
                target = node.func.value
            if target is None or not _tie_prone(target):
                continue
            findings.append(
                self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "unkeyed sort of float-scored data; pass an explicit "
                    "key= that breaks ties on a total order",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# DET103 — accumulation-order hazards in dual-backend code
# ---------------------------------------------------------------------------

_BACKEND_MARKER = "REPRO_BATCH_BACKEND"
_REDUCTION_ATTRS = {"sum", "nansum", "cumsum", "dot", "matmul", "einsum"}
_NUMPY_RECEIVERS = {"np", "numpy"}


def _is_dual_backend(module: SourceModule) -> bool:
    # The approximate tier's sketch reductions must agree bit-for-bit
    # across backends too (the sketch delta/state are part of the
    # sharded parity contract), so repro.approx modules are in scope
    # even though the sketch itself is integer-only today.
    return (
        _BACKEND_MARKER in module.text
        or module.imports_module("repro.core.batch")
        or module.imports_module("repro.approx.sketch")
        or "/approx/" in module.path.as_posix()
    )


@register
class AccumulationOrderRule(Rule):
    id = "DET103"
    name = "dual-backend-accumulation"
    family = "determinism"
    description = (
        "vectorised reduction (np.sum/.dot/@/math.fsum) in dual-backend "
        "code sums in a backend-dependent order; keep the explicit "
        "column-at-a-time loop that both backends share bit-for-bit"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not _is_dual_backend(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            message: Optional[str] = None
            lineno, col = 0, 0
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                message = (
                    "matrix multiply (@) accumulates in backend-defined "
                    "order; use the shared column-at-a-time loop"
                )
                lineno, col = node.lineno, node.col_offset
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                receiver = node.func.value
                dotted = dotted_name(node.func)
                if dotted == "math.fsum":
                    message = (
                        "math.fsum has no pure-python twin with the same "
                        "rounding; use the plain left-to-right loop"
                    )
                elif attr in _REDUCTION_ATTRS:
                    recv_name = dotted_name(receiver)
                    if recv_name in _NUMPY_RECEIVERS or attr in (
                        "sum",
                        "dot",
                    ):
                        message = (
                            f"vectorised reduction .{attr}() orders the "
                            "accumulation differently per backend; keep "
                            "the explicit loop"
                        )
                if message is not None:
                    lineno, col = node.lineno, node.col_offset
            if message is not None:
                findings.append(
                    self.finding(module, lineno, col, message)
                )
        return findings


# ---------------------------------------------------------------------------
# DET104 — float formatting breaking the repr-faithful wire contract
# ---------------------------------------------------------------------------

_WIRE_FUNC_RE = re.compile(r"(encode|decode|to_wire|from_wire|^_op_|wire)")
_PRECISION_SPEC_RE = re.compile(r"\.\d+[efgn%]|^[efgn%]$")
_PERCENT_FLOAT_RE = re.compile(r"%[-+ #0-9.]*[efgEFG]")


def _in_wire_scope(module: SourceModule) -> bool:
    parts = module.path.as_posix()
    return (
        "/service/" in parts
        or "/transport/" in parts
        or module.path.name.endswith("protocol.py")
        or module.path.name.endswith("codec.py")
    )


def _in_wire_function(module: SourceModule, node: ast.AST) -> bool:
    return any(
        _WIRE_FUNC_RE.search(name)
        for name in module.parents.enclosing_function_names(node)
    )


def _format_spec_text(spec: Optional[ast.expr]) -> str:
    if not isinstance(spec, ast.JoinedStr):
        return ""
    return "".join(
        value.value
        for value in spec.values
        if isinstance(value, ast.Constant) and isinstance(value.value, str)
    )


@register
class WireFloatFormatRule(Rule):
    id = "DET104"
    name = "wire-float-format"
    family = "determinism"
    description = (
        "wire encode/decode paths must keep floats repr-faithful: no "
        "precision format specs, no round(x, n), and json.dumps must "
        "pass allow_nan=False"
    )

    def check(self, module: SourceModule) -> List[Finding]:
        if not _in_wire_scope(module):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not _in_wire_function(module, node):
                continue
            message: Optional[str] = None
            if isinstance(node, ast.FormattedValue):
                spec = _format_spec_text(node.format_spec)
                if _PRECISION_SPEC_RE.search(spec):
                    message = (
                        f"float format spec {spec!r} truncates the "
                        "repr-faithful wire value"
                    )
            elif isinstance(node, ast.Call):
                final = terminal_name(node.func)
                if final == "round" and len(node.args) >= 2:
                    message = (
                        "round(x, ndigits) on a wire value loses the "
                        "repr-faithful float contract"
                    )
                elif final == "dumps" and dotted_name(node.func) in (
                    "json.dumps",
                    "dumps",
                ):
                    allow_nan = None
                    for kw in node.keywords:
                        if kw.arg == "allow_nan":
                            allow_nan = kw.value
                    ok = (
                        isinstance(allow_nan, ast.Constant)
                        and allow_nan.value is False
                    )
                    if not ok:
                        message = (
                            "json.dumps on the wire path must pass "
                            "allow_nan=False (NaN/Inf have no JSON repr)"
                        )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Mod
            ):
                left = node.left
                if isinstance(left, ast.Constant) and isinstance(
                    left.value, str
                ):
                    if _PERCENT_FLOAT_RE.search(left.value):
                        message = (
                            "%-style float formatting truncates the "
                            "repr-faithful wire value"
                        )
            if message is not None:
                findings.append(
                    self.finding(
                        module, node.lineno, node.col_offset, message
                    )
                )
        return findings
