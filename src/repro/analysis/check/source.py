"""Source loading: file collection, parsing, suppression comments.

Suppression syntax (mirrors ``# type: ignore`` placement rules)::

    risky_call()  # repro: ignore[LOCK202] -- send lock only guards this
    # repro: ignore[DET101]
    risky_line()

A trailing comment suppresses its own line; a standalone comment line
suppresses the next line.  Rule IDs are comma-separated and
case-insensitive.  Suppressions never hide the finding entirely — the
report lists them under ``suppressed`` so drift stays visible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set

from repro.analysis.check.astutil import ParentMap

SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")


class CheckError(Exception):
    """Raised when the analyzer cannot read or parse an input file."""


@dataclass
class SourceModule:
    """One parsed source file plus the metadata rules need."""

    path: Path
    display: str
    text: str
    lines: List[str]
    tree: ast.Module
    parents: ParentMap
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        return rule_id.upper() in self.suppressions.get(line, set())

    def imports_module(self, dotted: str) -> bool:
        """True when the module imports ``dotted`` (or from it)."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                if any(alias.name == dotted for alias in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module is None:
                    continue
                if node.module == dotted:
                    return True
                prefix, _, leaf = dotted.rpartition(".")
                if node.module == prefix and any(
                    alias.name == leaf for alias in node.names
                ):
                    return True
        return False


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule IDs.

    Purely textual: a ``repro: ignore`` inside a string literal would
    also register, which can only over-suppress on lines that look like
    suppressions — acceptable for a linter that reports suppressions.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = {
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        }
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        out.setdefault(target, set()).update(rules)
    return out


def load_module(path: Path, display: str) -> SourceModule:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckError(f"cannot read {display}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=display)
    except SyntaxError as exc:
        raise CheckError(f"cannot parse {display}: {exc}") from exc
    lines = text.splitlines()
    return SourceModule(
        path=path,
        display=display,
        text=text,
        lines=lines,
        tree=tree,
        parents=ParentMap(tree),
        suppressions=parse_suppressions(lines),
    )


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise CheckError(f"no such file or directory: {raw}")
        if root.is_file():
            candidates = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out


def display_name(path: Path) -> str:
    """Stable, portable display path (relative to cwd when possible)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()
