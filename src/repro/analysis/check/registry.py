"""Rule base class and the global rule registry.

A rule is a stateless object with stable metadata (``id``, ``family``,
one-line ``description``) and a ``check`` method producing findings for
one module.  Rules register at import time via :func:`register`; the
``rules`` package imports every rule module so that
``import repro.analysis.check`` yields the full inventory.
"""

from __future__ import annotations

from typing import Dict, List, Type, TypeVar

from repro.analysis.check.report import Finding, RuleInfo
from repro.analysis.check.source import SourceModule


class Rule:
    """Base class for analyzer rules.  Subclass and :func:`register`."""

    id: str = ""
    name: str = ""
    family: str = ""
    description: str = ""

    def info(self) -> RuleInfo:
        return RuleInfo(
            id=self.id,
            name=self.name,
            family=self.family,
            description=self.description,
        )

    def check(self, module: SourceModule) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        return Finding(
            path=module.display,
            line=line,
            col=col,
            rule=self.id,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}

R = TypeVar("R", bound=Rule)


def register(rule_cls: Type[R]) -> Type[R]:
    """Class decorator: instantiate and register a rule by its ID."""
    rule = rule_cls()
    if not rule.id or not rule.family:
        raise ValueError(f"rule {rule_cls.__name__} lacks id/family")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id.upper()]


def known_rule_ids() -> List[str]:
    return sorted(_REGISTRY)
