"""Intra-class call graph with lock-wrapper discovery.

The lock-discipline rules need to know, for a server-style class, which
methods run with the engine lock held.  Three patterns count as
"locked" in this codebase:

1. **Lexical** — the statement sits in the body of
   ``with self.<rlock>:``.
2. **Executor wrapper** — a method like ``_locked(self, fn, *args)``
   whose body calls its function parameter inside ``with self._lock:``;
   any callable handed to it runs under the lock.
3. **Forwarding wrapper** — a method that passes its function parameter
   on to a known wrapper, directly (``return self._locked(fn, *a)``) or
   bound (``partial(self._locked, fn, *a)`` shipped to an executor).

Method references passed *as arguments* to a wrapper (for example
``self._engine(self.monitor.add_query, q)`` or
``self._engine(self._snapshot)``) therefore execute under the lock and
are excluded from the unlocked-reachability closure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.check.astutil import (
    FUNCTION_NODES,
    FunctionNode,
    ParentMap,
    dotted_name,
    held_locks,
    lock_factory_of,
)


@dataclass
class ClassSummary:
    """Locks, methods, and wrapper structure of one class body."""

    node: ast.ClassDef
    name: str
    # attribute name -> factory kind ("Lock", "RLock", "Condition", ...)
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, FunctionNode] = field(default_factory=dict)
    # methods through which a callable argument runs under the lock
    wrappers: Set[str] = field(default_factory=set)
    # methods only ever invoked via a wrapper funcref (locked context)
    locked_via_wrapper: Set[str] = field(default_factory=set)

    @property
    def rlock_names(self) -> Set[str]:
        return {
            f"self.{attr}"
            for attr, kind in self.lock_attrs.items()
            if kind == "RLock"
        }

    @property
    def lock_names(self) -> Set[str]:
        return {f"self.{attr}" for attr in self.lock_attrs}

    def references_self_attr(self, attr: str) -> bool:
        for node in ast.walk(self.node):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False


def _positional_params(func: FunctionNode) -> List[str]:
    names = [arg.arg for arg in func.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _calls_param_under_lock(
    func: FunctionNode,
    param: str,
    parents: ParentMap,
    lock_names: Set[str],
) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if dotted_name(node.func) != param:
            continue
        if held_locks(node, parents, lock_names):
            return True
    return False


def _forwards_param_to_wrapper(
    func: FunctionNode,
    param: str,
    wrapper_refs: Set[str],
) -> bool:
    """True when ``param`` is handed to a known wrapper inside ``func``.

    Covers the direct form (``self._locked(fn, *args)``) and the bound
    form where the wrapper and the parameter travel in the same call's
    argument list (``partial(self._locked, fn, *args)``).
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        args = [dotted_name(arg) for arg in node.args] + [
            dotted_name(kw.value) for kw in node.keywords
        ]
        func_ref = dotted_name(node.func)
        if func_ref in wrapper_refs and param in args:
            return True
        if any(ref in wrapper_refs for ref in args) and param in args:
            return True
    return False


def summarize_class(node: ast.ClassDef, parents: ParentMap) -> ClassSummary:
    summary = ClassSummary(node=node, name=node.name)

    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign):
            continue
        kind = lock_factory_of(sub.value)
        if kind is None:
            continue
        for target in sub.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                summary.lock_attrs[target.attr] = kind

    for stmt in node.body:
        if isinstance(stmt, FUNCTION_NODES):
            summary.methods[stmt.name] = stmt

    lock_names = summary.lock_names
    if not lock_names:
        return summary

    # Pass 1: executor wrappers — a function parameter called under
    # a held class lock.
    for name, func in summary.methods.items():
        for param in _positional_params(func):
            if _calls_param_under_lock(func, param, parents, lock_names):
                summary.wrappers.add(name)
                break

    # Pass 2..n: forwarding wrappers, to a fixed point.
    changed = True
    while changed:
        changed = False
        wrapper_refs = {f"self.{w}" for w in summary.wrappers}
        for name, func in summary.methods.items():
            if name in summary.wrappers:
                continue
            for param in _positional_params(func):
                if _forwards_param_to_wrapper(func, param, wrapper_refs):
                    summary.wrappers.add(name)
                    changed = True
                    break

    # Methods referenced as ``self.X`` arguments to wrapper calls run
    # in a locked context.
    wrapper_refs = {f"self.{w}" for w in summary.wrappers}
    for func in summary.methods.values():
        for node_ in ast.walk(func):
            if not isinstance(node_, ast.Call):
                continue
            arg_refs = [dotted_name(arg) for arg in node_.args] + [
                dotted_name(kw.value) for kw in node_.keywords
            ]
            involved = dotted_name(node_.func) in wrapper_refs or any(
                ref in wrapper_refs for ref in arg_refs
            )
            if not involved:
                continue
            for ref in arg_refs:
                if ref is None or not ref.startswith("self."):
                    continue
                leaf = ref[len("self.") :]
                if leaf in summary.methods:
                    summary.locked_via_wrapper.add(leaf)
    return summary


def wrapper_argument_nodes(
    func: FunctionNode,
    wrapper_refs: Set[str],
) -> Set[ast.AST]:
    """AST nodes passed as arguments into wrapper calls within ``func``.

    Used to exclude funcrefs like ``self.monitor.add_query`` (handed to
    ``self._engine``) from "unlocked engine access" findings — the
    reference itself is created unlocked, but the *call* happens inside
    the wrapper, under the lock.
    """
    consumed: Set[ast.AST] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        all_args = list(node.args) + [kw.value for kw in node.keywords]
        involved = dotted_name(node.func) in wrapper_refs or any(
            dotted_name(arg) in wrapper_refs for arg in all_args
        )
        if not involved:
            continue
        for arg in all_args:
            for sub in ast.walk(arg):
                consumed.add(sub)
    return consumed


def unlocked_call_edges(
    summary: ClassSummary,
    parents: ParentMap,
) -> Dict[str, Set[str]]:
    """``method -> {methods it calls directly with no lock held}``."""
    edges: Dict[str, Set[str]] = {}
    for name, func in summary.methods.items():
        targets: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            ref = dotted_name(node.func)
            if ref is None or not ref.startswith("self."):
                continue
            leaf = ref[len("self.") :]
            if leaf not in summary.methods:
                continue
            if held_locks(node, parents, summary.lock_names):
                continue
            targets.add(leaf)
        edges[name] = targets
    return edges


def reachable_unlocked(
    summary: ClassSummary,
    parents: ParentMap,
    entrypoints: Set[str],
) -> Dict[str, str]:
    """Methods reachable from ``entrypoints`` without holding the lock.

    Returns ``{method: entrypoint_it_was_first_reached_from}``.
    Wrapper methods and methods only invoked via wrapper funcrefs are
    not traversed (their bodies run under the lock).
    """
    edges = unlocked_call_edges(summary, parents)
    origin: Dict[str, str] = {}
    stack: List[str] = []
    for entry in sorted(entrypoints):
        if entry in summary.methods and entry not in origin:
            origin[entry] = entry
            stack.append(entry)
    while stack:
        current = stack.pop()
        for target in sorted(edges.get(current, ())):
            if target in origin:
                continue
            if target in summary.wrappers:
                continue
            if (
                target in summary.locked_via_wrapper
                and target not in entrypoints
            ):
                continue
            origin[target] = origin[current]
            stack.append(target)
    return origin
