"""``python -m repro.analysis.check`` entry point."""

import sys

from repro.analysis.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
