"""Command-line front end: ``python -m repro.analysis.check``.

Exit codes: 0 clean, 1 findings, 2 usage/parse error — the same
contract CI keys off.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.check import CheckError, all_rules, run_check
from repro.analysis.check.report import render_rule_table


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.check",
        description=(
            "Static analyzer for repro project invariants: determinism "
            "(DET1xx), lock discipline (LOCK2xx), process safety "
            "(PROC3xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule inventory and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_table([rule.info() for rule in all_rules()]))
        return 0

    try:
        report = run_check(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except CheckError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        print(report.render_human())
    return 0 if report.clean else 1
