"""The Section 6 performance analysis as executable formulas.

All quantities are *operation counts* (unitless), under the paper's
assumptions: N valid tuples uniformly distributed in the unit
d-dimensional workspace, r arrivals (and r expirations) per processing
cycle, Q queries of cardinality k, grid cell extent δ per axis.

The model drives two things in this repository: the documentation's
predicted trends and ``benchmarks/test_ablation_cost_model.py``, which
checks that the *measured* operation counters move the way the model
says they should (the absolute constants are implementation-specific,
the shapes are not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class WorkloadParameters:
    """The paper's parameter vector (Table 1)."""

    n: int  # data cardinality N (valid tuples)
    r: int  # arrival rate per processing cycle
    d: int  # dimensionality
    k: int  # result cardinality
    q: int  # number of running queries
    cells_per_axis: int  # 1/δ

    @property
    def delta(self) -> float:
        return 1.0 / self.cells_per_axis

    @property
    def cell_volume(self) -> float:
        return self.delta**self.d

    @property
    def points_per_cell(self) -> float:
        """N·δ^d — the expected cell occupancy."""
        return self.n * self.cell_volume


class CostModel:
    """Closed-form costs of TMA / SMA (Section 6)."""

    def __init__(self, params: WorkloadParameters) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def influence_cells(self) -> float:
        """C — cells intersecting one query's influence region.

        The region holds k of the N uniform records, hence volume k/N,
        hence ⌈k / (N·δ^d)⌉ cells.
        """
        p = self.params
        return max(1.0, math.ceil(p.k / max(p.points_per_cell, 1e-12)))

    def influence_points(self) -> float:
        """|C| — points inside the processed cells."""
        return self.influence_cells() * self.params.points_per_cell

    def topk_computation_cost(self) -> float:
        """T_comp = O(C·log C + |C|·log k)."""
        cells = self.influence_cells()
        points = self.influence_points()
        return cells * math.log2(cells + 1) + points * math.log2(
            self.params.k + 1
        )

    def recomputation_probability(self) -> float:
        """Pr_rec ≤ 1 − (1 − r/N)^k — some current result expires.

        The bound is loose (arrivals may replace expiring entries) but
        captures the growth with k and r that Figure 19 exhibits.
        """
        p = self.params
        ratio = min(1.0, p.r / p.n)
        return 1.0 - (1.0 - ratio) ** p.k

    # ------------------------------------------------------------------
    # Per-cycle running time
    # ------------------------------------------------------------------

    def tma_cycle_cost(self) -> float:
        """T_TMA = O(r + Q·(C·r·δ^d + k·(r/N)·log k + Pr_rec·T_comp))."""
        p = self.params
        per_query = (
            self.influence_cells() * p.r * p.cell_volume
            + p.k * p.r / p.n * math.log2(p.k + 1)
            + self.recomputation_probability() * self.topk_computation_cost()
        )
        return p.r + p.q * per_query

    def sma_cycle_cost(self) -> float:
        """T_SMA = O(r + Q·(C·r·δ^d + k²·r/N)).

        Under uniformity SMA never recomputes from scratch: influence-
        region insertions and deletions balance and the skyband stays
        at k entries (verified empirically by the ablation benchmark).
        """
        p = self.params
        per_query = (
            self.influence_cells() * p.r * p.cell_volume
            + p.k * p.k * p.r / p.n
        )
        return p.r + p.q * per_query

    # ------------------------------------------------------------------
    # Space (entry counts; bytes live in repro.analysis.memory)
    # ------------------------------------------------------------------

    def index_space(self) -> float:
        """O(N·d + N + Q·C): records, point-list pointers, ILs."""
        p = self.params
        return p.n * p.d + p.n + p.q * self.influence_cells()

    def tma_space(self) -> float:
        """S_TMA = O(N·(d+1) + Q·(C + d + 2k))."""
        p = self.params
        return p.n * (p.d + 1) + p.q * (
            self.influence_cells() + p.d + 2 * p.k
        )

    def sma_space(self) -> float:
        """S_SMA = O(N·(d+1) + Q·(C + d + 3k))."""
        p = self.params
        return p.n * (p.d + 1) + p.q * (
            self.influence_cells() + p.d + 3 * p.k
        )
