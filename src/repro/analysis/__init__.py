"""Analytical cost model (Section 6) and paper-style space accounting."""

from repro.analysis.cost_model import (
    CostModel,
    WorkloadParameters,
)
from repro.analysis.memory import (
    SpaceBreakdown,
    estimate_space,
)

__all__ = [
    "CostModel",
    "SpaceBreakdown",
    "WorkloadParameters",
    "estimate_space",
]
