"""Core model: records, scoring, windows, queries, results, engine."""

from repro.core.engine import StreamMonitor
from repro.core.handles import QueryHandle
from repro.core.subscriptions import (
    ChangeStream,
    Subscription,
    SubscriptionHub,
)
from repro.core.errors import (
    DimensionalityError,
    NonMonotoneFunctionError,
    QueryError,
    ReproError,
    StreamError,
    WindowError,
)
from repro.core.queries import (
    ConstrainedTopKQuery,
    QueryTable,
    ThresholdQuery,
    TopKQuery,
)
from repro.core.regions import Rectangle
from repro.core.results import CycleReport, ResultChange, ResultEntry
from repro.core.scoring import (
    CallableFunction,
    LinearFunction,
    PreferenceFunction,
    ProductFunction,
    QuadraticFunction,
    check_monotone,
)
from repro.core.stats import OpCounters, RunStats
from repro.core.tuples import RecordFactory, StreamRecord, rank_key
from repro.core.window import CountBasedWindow, SlidingWindow, TimeBasedWindow

__all__ = [
    "CallableFunction",
    "ChangeStream",
    "ConstrainedTopKQuery",
    "CountBasedWindow",
    "CycleReport",
    "DimensionalityError",
    "LinearFunction",
    "NonMonotoneFunctionError",
    "OpCounters",
    "PreferenceFunction",
    "ProductFunction",
    "QuadraticFunction",
    "QueryError",
    "QueryHandle",
    "QueryTable",
    "Rectangle",
    "RecordFactory",
    "ReproError",
    "ResultChange",
    "ResultEntry",
    "RunStats",
    "Subscription",
    "SubscriptionHub",
    "SlidingWindow",
    "StreamError",
    "StreamMonitor",
    "StreamRecord",
    "ThresholdQuery",
    "TimeBasedWindow",
    "TopKQuery",
    "WindowError",
    "check_monotone",
    "rank_key",
]
