"""Core model: records, scoring, windows, queries, results, engine."""

from repro.core.engine import StreamMonitor
from repro.core.errors import (
    DimensionalityError,
    NonMonotoneFunctionError,
    QueryError,
    ReproError,
    StreamError,
    WindowError,
)
from repro.core.queries import (
    ConstrainedTopKQuery,
    QueryTable,
    ThresholdQuery,
    TopKQuery,
)
from repro.core.regions import Rectangle
from repro.core.results import CycleReport, ResultChange, ResultEntry
from repro.core.scoring import (
    CallableFunction,
    LinearFunction,
    PreferenceFunction,
    ProductFunction,
    QuadraticFunction,
    check_monotone,
)
from repro.core.stats import OpCounters, RunStats
from repro.core.tuples import RecordFactory, StreamRecord, rank_key
from repro.core.window import CountBasedWindow, SlidingWindow, TimeBasedWindow

__all__ = [
    "CallableFunction",
    "ConstrainedTopKQuery",
    "CountBasedWindow",
    "CycleReport",
    "DimensionalityError",
    "LinearFunction",
    "NonMonotoneFunctionError",
    "OpCounters",
    "PreferenceFunction",
    "ProductFunction",
    "QuadraticFunction",
    "QueryError",
    "QueryTable",
    "Rectangle",
    "RecordFactory",
    "ReproError",
    "ResultChange",
    "ResultEntry",
    "RunStats",
    "SlidingWindow",
    "StreamError",
    "StreamMonitor",
    "StreamRecord",
    "ThresholdQuery",
    "TimeBasedWindow",
    "TopKQuery",
    "WindowError",
    "check_monotone",
    "rank_key",
]
