"""Machine-independent operation counters and run statistics.

The paper reports CPU seconds on a fixed machine. Absolute seconds are
not portable across substrates (its testbed is C-like code on a 2006
Pentium; ours is CPython), so every algorithm additionally counts the
operations Section 6's cost model is written in terms of: cells
en-heaped and processed, points scored, from-scratch recomputations
(the empirical Pr_rec), skyband and view maintenance work. Benchmarks
report both wall-clock and counters, and the cost-model ablation checks
the counters against the analytical predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Union


@dataclass(slots=True)
class OpCounters:
    """Additive operation counters. All fields default to zero."""

    arrivals: int = 0
    expirations: int = 0
    cells_enheaped: int = 0
    cells_processed: int = 0
    points_scored: int = 0
    topk_computations: int = 0
    recomputations: int = 0
    grouped_traversals: int = 0
    grouped_queries_served: int = 0
    grouped_registrations: int = 0
    influence_checks: int = 0
    influence_list_updates: int = 0
    influence_trim_visits: int = 0
    top_list_updates: int = 0
    skyband_insertions: int = 0
    skyband_evictions: int = 0
    dominance_updates: int = 0
    view_insertions: int = 0
    view_refills: int = 0
    sorted_accesses: int = 0
    random_accesses: int = 0
    sorted_list_updates: int = 0
    sketch_updates: int = 0
    approx_refreshes: int = 0
    approx_admissions: int = 0

    def add(self, other: "OpCounters") -> None:
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def snapshot(self) -> "OpCounters":
        return OpCounters(
            **{spec.name: getattr(self, spec.name) for spec in fields(self)}
        )

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


class _NullOpCounters:
    """Null object standing in for :class:`OpCounters` when none is given.

    Reads return 0 and increments vanish, so hot loops can update
    ``counters.x += n`` unconditionally instead of branching on
    ``counters is not None`` at every step. Shared singleton:
    :data:`NULL_COUNTERS`.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> int:
        if name.startswith("__"):  # keep copy/pickle protocols sane
            raise AttributeError(name)
        return 0

    def __setattr__(self, name: str, value) -> None:
        pass


#: shared do-nothing counter sink (see :class:`_NullOpCounters`).
NULL_COUNTERS = _NullOpCounters()


@dataclass(slots=True)
class RunStats:
    """Aggregate over a monitoring run: cycle times + total counters."""

    cycle_seconds: List[float] = field(default_factory=list)
    counters: OpCounters = field(default_factory=OpCounters)

    @property
    def cycles(self) -> int:
        return len(self.cycle_seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.cycle_seconds)

    @property
    def mean_cycle_seconds(self) -> float:
        return self.total_seconds / self.cycles if self.cycles else 0.0

    def record_cycle(self, seconds: float, counters: OpCounters) -> None:
        self.cycle_seconds.append(seconds)
        self.counters.add(counters)

    def summary(self) -> Dict[str, Union[int, float]]:
        """Flat run summary. Counts stay ``int`` (cycles and every
        OpCounters field); only the timing aggregates are floats —
        downstream JSON (bench ``--json``) renders ``17``, not
        ``17.0``."""
        data: Dict[str, Union[int, float]] = {
            "cycles": self.cycles,
            "total_seconds": self.total_seconds,
            "mean_cycle_seconds": self.mean_cycle_seconds,
        }
        data.update(self.counters.as_dict())
        return data
