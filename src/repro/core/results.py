"""Result representation and change reports.

Each processing cycle ends with "report changes to the client" (paper
Figures 9 and 11, last line). A change report per query carries the
records that entered and left the top-k set plus the full current
result, best-first in the canonical rank order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.tuples import StreamRecord


class ResultEntry(NamedTuple):
    """A scored record; sorts naturally in rank order via (score, rid)."""

    score: float
    record: StreamRecord

    @property
    def rid(self) -> int:
        return self.record.rid

    @property
    def key(self) -> Tuple[float, int]:
        return (self.score, self.record.rid)


def entries_best_first(entries: Sequence[ResultEntry]) -> List[ResultEntry]:
    """Sort entries into canonical best-first order."""
    return sorted(entries, key=lambda entry: entry.key, reverse=True)


@dataclass(slots=True)
class ResultChange:
    """Delta of one query's result over one processing cycle.

    ``cause`` tells push consumers *why* the result moved: ``"cycle"``
    for ordinary stream maintenance (the paper's per-cycle report),
    ``"register"`` for the initial result delivered at registration,
    ``"update"`` after an in-flight :meth:`~repro.core.handles.QueryHandle.update`,
    ``"resume"`` for the re-sync delta after a pause, ``"cancel"``
    for the final clear-out when a query terminates, ``"resync"``
    for a backlog collapsed by a ``coalesce``-policy delivery
    (:func:`merge_changes`), and ``"approx"`` for cycle maintenance of
    a query running under an accuracy contract (:mod:`repro.approx`).
    Replaying the ``added``/``removed`` sequence of *every* cause
    reconstructs the pull API's result exactly (see
    ``tests/integration/test_subscription_parity.py``).

    ``bound`` accompanies ``cause="approx"``: the certified relative
    error of this report (``exact_kth_score <= reported_kth_score *
    (1 + bound)``). Exact causes carry ``None``.
    """

    qid: int
    added: List[ResultEntry] = field(default_factory=list)
    removed: List[ResultEntry] = field(default_factory=list)
    top: List[ResultEntry] = field(default_factory=list)
    cause: str = "cycle"
    bound: Optional[float] = None

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed)

    def top_ids(self) -> List[int]:
        return [entry.rid for entry in self.top]


def diff_results(
    qid: int,
    old: Sequence[ResultEntry],
    new: Sequence[ResultEntry],
    cause: str = "cycle",
    bound: Optional[float] = None,
) -> ResultChange:
    """Compute the change report between two result snapshots."""
    old_ids = {entry.rid for entry in old}
    new_ids = {entry.rid for entry in new}
    added = [entry for entry in new if entry.rid not in old_ids]
    removed = [entry for entry in old if entry.rid not in new_ids]
    return ResultChange(
        qid=qid,
        added=entries_best_first(added),
        removed=entries_best_first(removed),
        top=list(new),
        cause=cause,
        bound=bound,
    )


def merge_changes(
    older: ResultChange, newer: ResultChange
) -> ResultChange:
    """Collapse two consecutive deltas of one query into a single
    equivalent ``cause="resync"`` delta.

    Replaying the merged delta on any state that would have accepted
    ``older`` produces exactly the state after ``newer`` — the
    invariant that lets a ``coalesce``-policy delivery shrink an
    arbitrary backlog to one delta per query without breaking the
    replay-parity contract. The pre-``older`` state is reconstructed
    by inverting ``older`` against its own ``top``, then diffed
    against ``newer.top``.

    A terminal ``newer`` keeps its ``"cancel"`` cause: the merged
    delta is still the query's final clear-out, and consumers (the
    serving runtime included) key their teardown on seeing it.
    """
    if older.qid != newer.qid:
        raise ValueError(
            f"cannot merge deltas of different queries: "
            f"{older.qid} != {newer.qid}"
        )
    before = {entry.rid: entry for entry in older.top}
    for entry in older.added:
        before.pop(entry.rid, None)
    for entry in older.removed:
        before[entry.rid] = entry
    return diff_results(
        older.qid,
        entries_best_first(list(before.values())),
        newer.top,
        cause="cancel" if newer.cause == "cancel" else "resync",
        # The merged delta lands the consumer on ``newer.top``, so the
        # newest certificate is the one that describes it.
        bound=newer.bound,
    )


@dataclass(slots=True)
class CycleReport:
    """Everything one call to the engine's ``process`` produced.

    ``arrivals`` counts the records that actually entered the window;
    records submitted already expired (possible under a time-based
    window when a batch spans more than the window duration) are
    dropped by the engine before the algorithm sees them and reported
    in ``dead_on_arrival`` instead.
    """

    timestamp: float
    arrivals: int
    expirations: int
    changes: Dict[int, ResultChange] = field(default_factory=dict)
    cpu_seconds: float = 0.0
    dead_on_arrival: int = 0

    def changed_queries(self) -> List[int]:
        return [qid for qid, change in self.changes.items() if change.changed]

    def result_of(self, qid: int) -> List[ResultEntry]:
        return self.changes[qid].top
