"""Stream records and the canonical ranking order.

A record is ``<p.id, p.x1 ... p.xd, p.t>`` exactly as in paper
Section 4.1: a unique identifier, d numeric attributes, and the arrival
time. Identifiers are assigned in arrival order, which makes them a
proxy for expiration order in both count-based and time-based windows
(footnote 4: "in both count-based and time-based windows the arrival
order is the same as the expiration order").

**Canonical ranking order.** Scores can tie. All algorithms in this
library (and the brute-force oracle the tests compare against) rank
records by the lexicographic key ``(score, rid)`` descending. This is
not just a tie-break convenience: in the score–time space of Section 5,
a later-arriving record with an equal score *dominates* an earlier one
(same score, expires later), so ``(score, rid)`` descending is exactly
the skyband dominance order, and every algorithm reports identical
top-k sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.core.errors import DimensionalityError

#: Rank key type: ``(score, rid)`` compared descending.
RankKey = Tuple[float, int]

#: Key smaller than that of any real record: the "empty result" gate.
MIN_RANK_KEY: RankKey = (float("-inf"), -1)


@dataclass(frozen=True, slots=True)
class StreamRecord:
    """One stream tuple.

    Attributes:
        rid: unique identifier, assigned in arrival order.
        attrs: the d attribute values (the paper's unit workspace uses
            values in [0, 1], but nothing here requires that).
        time: arrival timestamp (drives time-based windows).
    """

    rid: int
    attrs: Tuple[float, ...]
    time: float = 0.0

    @property
    def dims(self) -> int:
        return len(self.attrs)

    def require_dims(self, dims: int) -> None:
        """Raise :class:`DimensionalityError` unless ``dims`` matches."""
        if len(self.attrs) != dims:
            raise DimensionalityError(
                f"record {self.rid} has {len(self.attrs)} attributes, "
                f"expected {dims}"
            )


class RecordFactory:
    """Mints records with consecutive ids.

    Stream drivers share one factory per run so ids are globally unique
    and strictly increasing in arrival order — the property the
    canonical rank key and the skyband reduction rely on.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start

    @property
    def next_id(self) -> int:
        return self._next

    def make(self, attrs: Sequence[float], time: float = 0.0) -> StreamRecord:
        record = StreamRecord(self._next, tuple(attrs), time)
        self._next += 1
        return record

    def make_batch(
        self, rows: Sequence[Sequence[float]], time: float = 0.0
    ) -> list:
        return [self.make(row, time) for row in rows]


def rank_key(score: float, record: StreamRecord) -> RankKey:
    """Canonical descending-order key of ``record`` with ``score``."""
    return (score, record.rid)


def iter_sorted_by_rank(
    scored: Sequence[Tuple[float, StreamRecord]],
) -> Iterator[Tuple[float, StreamRecord]]:
    """Yield ``(score, record)`` pairs best-first in canonical order."""
    return iter(
        sorted(scored, key=lambda pair: (pair[0], pair[1].rid), reverse=True)
    )
