"""Query handles: the object-capability face of a registered query.

:meth:`~repro.core.engine.StreamMonitor.add_query` returns a
:class:`QueryHandle` that owns the query's full lifecycle::

    handle = monitor.add_query(TopKQuery(f, k=10))
    handle.subscribe(lambda change: print(change.added))
    handle.pause();  handle.resume()
    handle.update(k=20)                  # in-flight, no re-registration
    top = handle.result()
    handle.cancel()

Backwards compatibility: a handle is **int-like** — it hashes and
compares equal to its ``qid``, works as a dict key into
``report.changes``, and is accepted everywhere the engine takes a qid
(``monitor.result(handle)`` etc.). Code written against the original
qid-based API keeps working unchanged when ``add_query`` starts
returning handles; see ``docs/API.md`` for the migration guide.

The handle holds no query state of its own: every operation delegates
to the monitor, so behaviour is identical for in-process and sharded
execution, and a handle observed from the monitor's side (``cancel``
via ``monitor.remove_query``, ``monitor.close()``) transitions state
exactly as if the handle's own method had been called.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.core.results import ResultChange, ResultEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import StreamMonitor
    from repro.core.subscriptions import ChangeStream, Subscription

#: handle lifecycle states (monitor-owned; the handle only mirrors).
ACTIVE = "active"
PAUSED = "paused"
CANCELLED = "cancelled"
CLOSED = "closed"


class QueryHandle:
    """Live reference to one registered query (int-like, see module)."""

    __slots__ = ("_monitor", "_qid", "query", "_state")

    def __init__(self, monitor: "StreamMonitor", query) -> None:
        self._monitor = monitor
        self._qid = int(query.qid)
        #: the query specification (shared with the monitor; mutate
        #: only through :meth:`update`).
        self.query = query
        self._state = ACTIVE

    # ------------------------------------------------------------------
    # Identity: behave as the qid
    # ------------------------------------------------------------------

    @property
    def qid(self) -> int:
        return self._qid

    def __int__(self) -> int:
        return self._qid

    def __index__(self) -> int:
        return self._qid

    def __hash__(self) -> int:
        return hash(self._qid)

    def __eq__(self, other) -> bool:
        if isinstance(other, QueryHandle):
            return self._qid == other._qid
        if isinstance(other, int):
            return self._qid == other
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, QueryHandle):
            return self._qid < other._qid
        if isinstance(other, int):
            return self._qid < other
        return NotImplemented

    def __repr__(self) -> str:
        label = getattr(self.query, "label", "") or f"q{self._qid}"
        return f"QueryHandle({label}, qid={self._qid}, {self._state})"

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"active"``, ``"paused"``, ``"cancelled"`` or ``"closed"``."""
        return self._state

    @property
    def active(self) -> bool:
        return self._state == ACTIVE

    @property
    def paused(self) -> bool:
        return self._state == PAUSED

    @property
    def cancelled(self) -> bool:
        return self._state == CANCELLED

    @property
    def closed(self) -> bool:
        return self._state == CLOSED

    @property
    def monitor(self) -> "StreamMonitor":
        """The monitor this handle belongs to."""
        return self._monitor

    @property
    def accuracy(self):
        """The query's (ε,δ) accuracy contract, or ``None`` when it
        runs on an exact maintenance path (see :mod:`repro.approx`)."""
        return getattr(self.query, "accuracy", None)

    # ------------------------------------------------------------------
    # Lifecycle operations (all delegate to the monitor)
    # ------------------------------------------------------------------

    def result(self) -> List[ResultEntry]:
        """Current result, best-first (frozen snapshot while paused)."""
        return self._monitor.result(self._qid)

    def cancel(self) -> None:
        """Terminate the query and scrub its state everywhere.

        Subscribers receive a final ``cause="cancel"`` delta clearing
        the result; further handle operations raise
        :class:`~repro.core.errors.QueryError`.
        """
        self._monitor.remove_query(self._qid)

    def pause(self) -> None:
        """Freeze the query: maintenance is *skipped* while paused.

        The result observed through :meth:`result` stays the snapshot
        taken at pause time; no deltas are delivered until
        :meth:`resume` re-syncs exactly against the then-current
        window.
        """
        self._monitor.pause_query(self._qid)

    def resume(self) -> None:
        """Re-activate a paused query with an exact re-sync.

        The result is recomputed from the current window state (no
        stream replay) and one ``cause="resume"`` delta bridges the
        frozen snapshot to the fresh result.
        """
        self._monitor.resume_query(self._qid)

    def update(
        self,
        k: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        function=None,
    ) -> List[ResultEntry]:
        """Mutate the running query in flight and return the new result.

        ``k`` and/or the preference (``weights`` builds a
        :class:`~repro.core.scoring.LinearFunction`; ``function``
        passes any monotone preference function) change *in place*:
        the algorithm reuses its window/grid state to recompute —
        never a full stream replay — and the result is identical to
        cancelling and re-registering the modified query. Subscribers
        receive one ``cause="update"`` delta.
        """
        return self._monitor.update_query(
            self._qid, k=k, weights=weights, function=function
        )

    # ------------------------------------------------------------------
    # Push delivery
    # ------------------------------------------------------------------

    def subscribe(
        self, callback: Callable[[ResultChange], None]
    ) -> "Subscription":
        """Call ``callback(change)`` on every future delta of this
        query (cycle maintenance, update, resume, and the final
        cancel)."""
        return self._monitor.subscribe(self._qid, callback)

    def changes(
        self, maxlen: Optional[int] = None, block: bool = False
    ) -> "ChangeStream":
        """A buffered iterator of this query's future deltas (see
        :class:`~repro.core.subscriptions.ChangeStream`).

        ``maxlen`` bounds the buffer (oldest delta dropped and counted
        on overflow); ``block=True`` makes iteration wait for deltas
        and terminate cleanly when the query or monitor goes away.
        """
        return self._monitor.changes(self._qid, maxlen=maxlen, block=block)
