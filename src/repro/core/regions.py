"""Axis-parallel rectangles (hyper-boxes).

Used by grid cell geometry and by the constrained top-k extension
(paper Section 7): "each constraint is expressed as a range along a
dimension and the conjunction of all constraints forms a
hyper-rectangle in the d-dimensional attribute space".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.errors import DimensionalityError


@dataclass(frozen=True, slots=True)
class Rectangle:
    """Closed-below, open-above box ``[lower, upper)`` per dimension.

    The half-open convention matches grid cells (paper Section 4.1:
    cell ci,j covers ``[i·δ, (i+1)·δ)`` on each axis). For constraint
    regions the distinction only matters on the boundary; the paper
    does not specify boundary semantics, so we follow the cells'.
    """

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise DimensionalityError(
                f"lower has {len(self.lower)} dims, upper {len(self.upper)}"
            )
        if any(lo > hi for lo, hi in zip(self.lower, self.upper)):
            raise DimensionalityError(
                f"empty rectangle: lower={self.lower} upper={self.upper}"
            )

    @property
    def dims(self) -> int:
        return len(self.lower)

    def contains(self, attrs: Sequence[float]) -> bool:
        """Point membership (lower-closed, upper-open)."""
        return all(
            lo <= value < hi
            for lo, value, hi in zip(self.lower, attrs, self.upper)
        )

    def intersects(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> bool:
        """Whether the box ``[lower, upper)`` overlaps this rectangle."""
        return all(
            lo < other_hi and other_lo < hi
            for lo, hi, other_lo, other_hi in zip(
                self.lower, self.upper, lower, upper
            )
        )

    def clip(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> Optional["Rectangle"]:
        """Intersection with ``[lower, upper)``, or None when disjoint."""
        new_lower = tuple(
            max(a, b) for a, b in zip(self.lower, lower)
        )
        new_upper = tuple(
            min(a, b) for a, b in zip(self.upper, upper)
        )
        if any(lo >= hi for lo, hi in zip(new_lower, new_upper)):
            return None
        return Rectangle(new_lower, new_upper)

    def volume(self) -> float:
        product = 1.0
        for lo, hi in zip(self.lower, self.upper):
            product *= hi - lo
        return product

    @staticmethod
    def unit(dims: int) -> "Rectangle":
        """The unit workspace ``[0, 1)^d`` (scores treat 1.0 as inside)."""
        return Rectangle((0.0,) * dims, (1.0,) * dims)
