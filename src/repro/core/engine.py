"""The unified monitoring facade: windows + algorithm + push delivery.

:class:`StreamMonitor` wires together a sliding window (or an
explicit-deletion live set), a monitoring algorithm, and the query
table, and exposes the processing-cycle model of the paper: each call
to :meth:`StreamMonitor.process` is one cycle — a batch of arrivals
enters the window, the records that fall out of the window expire, the
algorithm maintains every registered query, and the per-query result
changes are reported back *and* pushed to subscribers.

One facade serves every query kind and execution mode:

- **top-k / constrained / threshold queries** all register through
  :meth:`add_query` (the Section-7 extension monitors are thin shims
  over this facade now);
- ``stream_model="update"`` switches the engine to Section 7's
  explicit-deletion stream model (no sliding window; SMA is refused
  because the expiry order is unknown in advance);
- ``shards=N`` partitions queries across worker processes with
  bitwise-identical results.

:meth:`add_query` returns a :class:`~repro.core.handles.QueryHandle`
that owns the query's lifecycle — ``result()``, ``cancel()``,
``pause()``/``resume()``, in-flight ``update(k=…, weights=…)``, and
push delivery via ``subscribe(callback)`` / ``changes()``. Handles are
int-like (they hash and compare as their qid), so the original
qid-based calls (``monitor.result(qid)``, ``report.changes[qid]``)
keep working unchanged; see ``docs/API.md``.

Timing discipline: the engine times the algorithm's maintenance work
(the paper's measured quantity) per cycle in
:attr:`StreamMonitor.cycle_seconds`; the initial top-k computation
each registration performs in :attr:`StreamMonitor.setup_seconds`; and
in-flight mutations (update / pause / resume) in
:attr:`StreamMonitor.mutation_seconds` — three separate accounts, so
none can masquerade as (or hide from) another in a comparison.
Subscriber callbacks run *after* the maintenance clock stops.

Dead-on-arrival records: under a time-based window, an arrival already
older than ``now - duration`` would be inserted and evicted within the
same cycle, feeding the algorithm the same record as both an arrival
and an expiration. The engine drops such records before the window
ever sees them and reports the count in
:attr:`~repro.core.results.CycleReport.dead_on_arrival`.
"""

from __future__ import annotations

import time
import weakref
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.core.errors import QueryError, StreamError
from repro.core.handles import ACTIVE, CANCELLED, CLOSED, PAUSED, QueryHandle
from repro.core.queries import QueryTable, ThresholdQuery, TopKQuery
from repro.core.results import (
    CycleReport,
    ResultChange,
    ResultEntry,
    diff_results,
)
from repro.core.scoring import LinearFunction
from repro.core.subscriptions import (
    ChangeStream,
    Subscription,
    SubscriptionHub,
)
from repro.core.tuples import RecordFactory, StreamRecord
from repro.core.window import CountBasedWindow, SlidingWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms import MonitorAlgorithm

#: recognised stream models (see class docstring).
STREAM_MODELS = ("window", "update")


class StreamMonitor:
    """Continuous top-k monitoring over one multidimensional stream.

    Args:
        dims: data dimensionality.
        window: a :class:`~repro.core.window.SlidingWindow` instance
            (count-based or time-based). Required under the default
            ``stream_model="window"``; must be None under
            ``stream_model="update"`` (explicit deletions define the
            valid set there).
        algorithm: algorithm name (``"tma"``, ``"sma"``, ``"tsl"``,
            ``"brute"``, the similarity-grouped variants
            ``"tma-grouped"`` / ``"sma-grouped"``, or ``"approx"`` —
            TMA plus the sketch-backed approximate tier for queries
            registered with an ``accuracy`` contract) or a pre-built
            :class:`~repro.algorithms.base.MonitorAlgorithm`.
        cells_per_axis: grid granularity for grid-based algorithms.
        shards: ``None``/``1`` runs the algorithm in-process (the
            default, byte-for-byte the single-process engine).
            ``N > 1`` partitions queries across N worker processes
            (:class:`~repro.parallel.sharded.ShardedMonitorAlgorithm`)
            — results are bitwise identical, maintenance parallelises.
            A ``"host:port"`` string or a sequence of them partitions
            queries across that many *remote* shard hosts
            (``python -m repro.cluster.shard``) over TCP — same
            bitwise-parity contract, columnar cycle deltas on the
            wire (see :meth:`stats`). Either form requires an
            algorithm *name* (workers build their own instances).
        stream_model: ``"window"`` (the paper's sliding window — FIFO
            expiry) or ``"update"`` (Section 7's explicit-deletion
            streams: :meth:`process` takes a ``deletions`` batch, no
            window exists, and SMA is refused because the skyband
            needs the expiry order in advance).
        trace: enable per-cycle phase tracing. Off (the default) the
            engine holds :data:`~repro.obs.trace.NULL_TRACER` and
            every span is a shared no-op object; on, each cycle is
            sliced into phase spans (ingest / traversal / skyband /
            sketch / encode / shard_rpc / dispatch — see
            docs/OBSERVABILITY.md) collected in a ring buffer
            (:meth:`last_traces`) and mirrored into phase histograms
            on :attr:`metrics_registry`. Sharded runs forward the
            flag to every worker, whose per-cycle phase deltas merge
            into the coordinator registry.
        slow_cycle_seconds / slow_cycle_path: with ``trace=True``,
            cycles slower than the threshold are appended as JSON
            lines to the path (surviving the ring buffer).
        **algorithm_options: forwarded to the algorithm factory —
            e.g. ``grouped=True`` makes TMA/SMA batch each cycle's
            from-scratch recomputations by preference-vector
            similarity (bitwise-identical results, shared grid
            sweeps).

    Example:
        >>> from repro import LinearFunction, TopKQuery, CountBasedWindow
        >>> monitor = StreamMonitor(2, CountBasedWindow(4), algorithm="sma",
        ...                         cells_per_axis=4)
        >>> handle = monitor.add_query(TopKQuery(LinearFunction([1.0, 2.0]), k=1))
        >>> records = monitor.make_records([[0.3, 0.4], [0.9, 0.8]])
        >>> report = monitor.process(records)
        >>> [entry.rid for entry in handle.result()]
        [1]
    """

    def __init__(
        self,
        dims: int,
        window: Optional[SlidingWindow] = None,
        algorithm: Union[str, "MonitorAlgorithm"] = "sma",
        cells_per_axis: Optional[int] = None,
        shards: Union[int, str, Sequence[str], None] = None,
        stream_model: str = "window",
        trace: bool = False,
        slow_cycle_seconds: Optional[float] = None,
        slow_cycle_path: Optional[str] = None,
        **algorithm_options,
    ) -> None:
        # Imported here to keep repro.core importable on its own
        # (repro.algorithms.base imports repro.core in turn).
        from repro.algorithms import MonitorAlgorithm, make_algorithm

        if stream_model not in STREAM_MODELS:
            raise ValueError(
                f"stream_model must be one of {STREAM_MODELS}, "
                f"got {stream_model!r}"
            )
        self.dims = dims
        self.stream_model = stream_model
        if stream_model == "window":
            if window is None:
                raise StreamError(
                    "the sliding-window stream model requires a window; "
                    "pass stream_model='update' for explicit-deletion "
                    "streams"
                )
        elif window is not None:
            raise StreamError(
                "the update stream model has no sliding window — data "
                "leaves via explicit deletions, not expiry"
            )
        self.window = window
        shard_hosts: Optional[List[str]] = None
        if isinstance(shards, str):
            shard_hosts = [shards]
        elif shards is not None and not isinstance(shards, int):
            shard_hosts = [str(address) for address in shards]
            if not shard_hosts:
                raise ValueError(
                    "shards address list must name at least one "
                    "'host:port' shard host"
                )
        self.shards = (
            len(shard_hosts)
            if shard_hosts is not None
            else 1 if shards is None else int(shards)
        )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        sharded = self.shards > 1 or shard_hosts is not None
        if isinstance(algorithm, MonitorAlgorithm):
            if sharded:
                raise ValueError(
                    "sharded execution requires an algorithm name "
                    "(worker processes build their own instances), "
                    "not a pre-built algorithm object"
                )
            self.algorithm = algorithm
        elif sharded:
            from repro.parallel import ShardedMonitorAlgorithm

            self.algorithm = ShardedMonitorAlgorithm(
                algorithm,
                dims,
                shards=(
                    shard_hosts if shard_hosts is not None else self.shards
                ),
                cells_per_axis=cells_per_axis,
                trace=trace,
                **algorithm_options,
            )
        else:
            self.algorithm = make_algorithm(
                algorithm, dims, cells_per_axis, **algorithm_options
            )
        # Observability: the registry is always on (collect-time
        # adapters cost nothing per cycle); the tracer only when asked.
        from repro.obs.metrics import MetricsRegistry, publish_op_counters
        from repro.obs.trace import NULL_TRACER, CycleTracer

        self.metrics_registry = MetricsRegistry()
        self.tracer = (
            CycleTracer(
                registry=self.metrics_registry,
                slow_cycle_seconds=slow_cycle_seconds,
                slow_cycle_path=slow_cycle_path,
            )
            if trace
            else NULL_TRACER
        )
        bind_obs = getattr(self.algorithm, "bind_observability", None)
        if bind_obs is not None:
            bind_obs(self.metrics_registry, self.tracer)
        # The registry must not hold the algorithm (or this monitor)
        # strongly: the registry lives on self, so a strong closure
        # would make every monitor a reference cycle, deferring its
        # grid and window to gen-2 GC instead of refcount death.
        algo_ref = weakref.ref(self.algorithm)

        def _read_op_counters(ref=algo_ref):
            algo = ref()
            return algo.counters.as_dict() if algo is not None else {}

        publish_op_counters(self.metrics_registry, _read_op_counters)
        if stream_model == "update":
            self._refuse_unordered_expiry()
        if isinstance(window, CountBasedWindow):
            # The approximate tier's sketch expires against the global
            # arrival count; algorithms that keep one learn the window
            # capacity here (others simply lack the hook).
            bind = getattr(self.algorithm, "bind_window", None)
            if bind is not None:
                bind(window.capacity)
        self.query_table = QueryTable()
        self.cycle_seconds: List[float] = []
        #: per-registration wall-clock of the initial top-k computation
        #: (one entry per add_query / add_queries call) — kept apart
        #: from cycle_seconds so benchmarks can report setup and
        #: maintenance without either skewing the other.
        self.setup_seconds: List[float] = []
        #: wall-clock of in-flight query mutations (update / pause /
        #: resume), one entry per operation — the third timing account
        #: (bench ``--churn`` reports it separately).
        self.mutation_seconds: List[float] = []
        self._factory = RecordFactory()
        self._clock = 0.0
        self._handles: Dict[int, QueryHandle] = {}
        self._paused: Dict[int, List[ResultEntry]] = {}
        self._hub = SubscriptionHub()
        self._live: Dict[int, StreamRecord] = {}
        self._closed = False

    def _refuse_unordered_expiry(self) -> None:
        """Reject SMA under the update model (paper Section 7: the
        skyband needs the expiry order known in advance)."""
        from repro.algorithms.sma import SkybandMonitoringAlgorithm

        base = getattr(self.algorithm, "base_algorithm", "")
        if isinstance(
            self.algorithm, SkybandMonitoringAlgorithm
        ) or base.startswith("sma"):
            raise StreamError(
                "SMA cannot monitor update streams: the skyband reduction "
                "requires the expiry order to be known in advance "
                "(paper Section 7); use TMA instead"
            )

    # ------------------------------------------------------------------
    # Internal guards
    # ------------------------------------------------------------------

    def _describe(self) -> str:
        name = getattr(self.algorithm, "name", type(self.algorithm).__name__)
        state = "closed" if self._closed else "open"
        return (
            f"{state} {self.stream_model}-model monitor, "
            f"algorithm={name}, {len(self.query_table)} live queries, "
            f"{len(self._paused)} paused"
        )

    def _require(self, qid) -> object:
        """The registered query behind ``qid`` (handle or int), or a
        descriptive :class:`~repro.core.errors.QueryError`."""
        qid = int(qid)
        if self._closed:
            raise QueryError(
                f"query {qid} is unavailable: the monitor is closed "
                f"({self._describe()})"
            )
        try:
            return self.query_table.get(qid)
        except QueryError:
            raise QueryError(
                f"unknown or terminated query id {qid} "
                f"({self._describe()})"
            ) from None

    def _ensure_open(self, operation: str) -> None:
        if self._closed:
            raise StreamError(
                f"{operation} on a closed monitor ({self._describe()})"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def add_query(self, query, accuracy=None) -> QueryHandle:
        """Register a query; its initial result is computed immediately.

        Accepts every query kind — :class:`~repro.core.queries.TopKQuery`,
        :class:`~repro.core.queries.ConstrainedTopKQuery`, and
        :class:`~repro.core.queries.ThresholdQuery` — and returns an
        int-like :class:`~repro.core.handles.QueryHandle` owning the
        query's lifecycle. Monitor-wide subscribers receive the initial
        result as a ``cause="register"`` delta.

        ``accuracy`` (an :class:`~repro.approx.Accuracy`, or one
        already attached to the query) opts the query into the
        sketch-backed approximate tier: its maintenance honours the
        (ε,δ) contract instead of exactness, and its change reports
        carry ``cause="approx"`` plus the certified ``bound``.
        Requires an algorithm that declares ``supports_accuracy``
        (``algorithm="approx"``); exact algorithms refuse the contract
        instead of silently ignoring it.
        """
        self._ensure_open("add_query")
        self._apply_accuracy(query, accuracy)
        qid = self.query_table.register(query)
        started = time.perf_counter()
        try:
            entries = self.algorithm.register(query)
        except BaseException:
            self.query_table.unregister(qid)
            raise
        self.setup_seconds.append(time.perf_counter() - started)
        return self._adopt(query, entries)

    def add_queries(
        self, queries: Sequence, accuracy=None
    ) -> List[QueryHandle]:
        """Register a burst of queries in one batch; return handles.

        The whole burst is handed to the algorithm at once
        (:meth:`~repro.algorithms.base.MonitorAlgorithm.register_many`),
        so grouped algorithms can serve similar queries' initial top-k
        computations through shared grid sweeps, and a sharded engine
        issues one round trip per shard instead of one per query.
        Results are identical to registering one by one.

        ``accuracy`` applies one (ε,δ) contract to the whole burst
        (see :meth:`add_query`); queries carrying their own contract
        keep it either way.
        """
        self._ensure_open("add_queries")
        for query in queries:
            self._apply_accuracy(query, accuracy)
        qids = [self.query_table.register(query) for query in queries]
        started = time.perf_counter()
        try:
            results = self.algorithm.register_many(list(queries))
        except BaseException:
            for qid in qids:
                self.query_table.unregister(qid)
            raise
        self.setup_seconds.append(time.perf_counter() - started)
        return [
            self._adopt(query, results[query.qid]) for query in queries
        ]

    def _apply_accuracy(self, query, accuracy) -> None:
        """Attach an accuracy contract and vet algorithm support.

        A contract passed here wins over one already on the query; a
        contract from either source against an algorithm that cannot
        honour it is an error — silently running such a query exactly
        would misreport its cost model, silently dropping the contract
        would misreport its accuracy.
        """
        if accuracy is not None:
            query.accuracy = accuracy
        if getattr(query, "accuracy", None) is None:
            return
        if not getattr(self.algorithm, "supports_accuracy", False):
            name = getattr(
                self.algorithm, "name", type(self.algorithm).__name__
            )
            raise QueryError(
                f"algorithm {name!r} does not support accuracy "
                "contracts; build the monitor with algorithm='approx'"
            )

    def _adopt(self, query, entries: List[ResultEntry]) -> QueryHandle:
        handle = QueryHandle(self, query)
        self._handles[handle.qid] = handle
        if entries and not self._hub.empty:
            self._hub.dispatch(
                {
                    handle.qid: diff_results(
                        handle.qid, [], entries, cause="register"
                    )
                }
            )
        return handle

    def remove_query(self, qid) -> None:
        """Terminate a query and scrub its book-keeping everywhere.

        Subscribers receive a final ``cause="cancel"`` delta clearing
        the result, then the query's subscriptions are cancelled. The
        handle transitions to ``cancelled``; any further operation on
        it raises :class:`~repro.core.errors.QueryError`.
        """
        self._require(qid)
        qid = int(qid)
        announce = not self._hub.empty
        frozen = self._paused.pop(qid, None)
        if frozen is None:
            last = self.algorithm.current_result(qid) if announce else []
            self.algorithm.unregister(qid)
        else:
            # Paused queries are already unregistered from the
            # algorithm; their frozen snapshot is the last delivered
            # result.
            last = frozen
        self.query_table.unregister(qid)
        # Drop the handle entry so register/cancel churn cannot grow
        # the monitor without bound — the caller's handle object keeps
        # reporting its (now cancelled) state.
        handle = self._handles.pop(qid, None)
        if handle is not None:
            handle._state = CANCELLED
        if announce and last:
            self._hub.dispatch(
                {
                    qid: ResultChange(
                        qid=qid,
                        removed=list(last),
                        top=[],
                        cause="cancel",
                    )
                }
            )
        self._hub.drop_query(qid)

    def result(self, qid) -> List[ResultEntry]:
        """Current top-k of a query, best-first (the frozen snapshot
        while the query is paused)."""
        self._require(qid)
        qid = int(qid)
        frozen = self._paused.get(qid)
        if frozen is not None:
            return list(frozen)
        return self.algorithm.current_result(qid)

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------

    def handle(self, qid) -> QueryHandle:
        """The :class:`~repro.core.handles.QueryHandle` of a live
        (active or paused) qid; cancelled queries' entries are
        released, so only the caller's own reference outlives
        termination."""
        found = self._handles.get(int(qid))
        if found is None:
            raise QueryError(
                f"no handle for query id {int(qid)} ({self._describe()})"
            )
        return found

    def handles(self) -> List[QueryHandle]:
        """Handles of every live (active or paused) query."""
        return [
            handle
            for handle in self._handles.values()
            if handle.state in (ACTIVE, PAUSED)
        ]

    # ------------------------------------------------------------------
    # In-flight mutation
    # ------------------------------------------------------------------

    def pause_query(self, qid) -> None:
        """Freeze a query: its maintenance is skipped entirely until
        :meth:`resume_query`. The result visible through the pull API
        stays the snapshot taken here; no deltas are delivered while
        paused."""
        self._require(qid)
        qid = int(qid)
        if qid in self._paused:
            raise QueryError(
                f"query {qid} is already paused ({self._describe()})"
            )
        started = time.perf_counter()
        self._paused[qid] = self.algorithm.current_result(qid)
        self.algorithm.unregister(qid)
        self.mutation_seconds.append(time.perf_counter() - started)
        handle = self._handles.get(qid)
        if handle is not None:
            handle._state = PAUSED

    def resume_query(self, qid) -> List[ResultEntry]:
        """Re-activate a paused query with an exact re-sync.

        The result is recomputed from the *current* window state (one
        registration-grade computation — never a stream replay), and
        subscribers receive a single ``cause="resume"`` delta bridging
        the frozen snapshot to the fresh result.
        """
        query = self._require(qid)
        qid = int(qid)
        frozen = self._paused.get(qid)
        if frozen is None:
            raise QueryError(
                f"query {qid} is not paused ({self._describe()})"
            )
        started = time.perf_counter()
        entries = self.algorithm.register(query)
        self.mutation_seconds.append(time.perf_counter() - started)
        del self._paused[qid]
        handle = self._handles.get(qid)
        if handle is not None:
            handle._state = ACTIVE
        if not self._hub.empty:
            change = diff_results(qid, frozen, entries, cause="resume")
            if change.changed:
                self._hub.dispatch({qid: change})
        return entries

    def update_query(
        self,
        qid,
        k: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        function=None,
    ) -> List[ResultEntry]:
        """Mutate a running query in flight; return the new result.

        ``k`` and/or the preference function change without tearing
        the registration down: the algorithm reuses its window/grid
        state (TMA trims its top list in place on a k decrease; the
        others recompute from current structures — never a stream
        replay), and the outcome is identical to cancelling and
        re-registering the modified query under the same qid.
        ``weights`` is sugar for ``function=LinearFunction(weights)``.
        Subscribers receive one ``cause="update"`` delta. While
        paused, only the spec changes — the re-sync happens at resume.
        """
        query = self._require(qid)
        qid = int(qid)
        if isinstance(query, ThresholdQuery):
            raise QueryError(
                f"threshold query {qid} cannot be updated in flight; "
                "cancel and re-register it instead"
            )
        if weights is not None:
            if function is not None:
                raise QueryError(
                    "pass either weights= or function=, not both"
                )
            function = LinearFunction(list(weights))
        if function is not None and function.dims != self.dims:
            raise QueryError(
                f"updated function has {function.dims} dims, "
                f"monitor has {self.dims}"
            )
        if k is not None and k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if k is None and function is None:
            return self.result(qid)
        if qid in self._paused:
            if k is not None:
                query.k = k
            if function is not None:
                query.function = function
            return list(self._paused[qid])
        announce = not self._hub.empty
        before = self.algorithm.current_result(qid) if announce else []
        started = time.perf_counter()
        entries = self.algorithm.update_query(qid, k=k, function=function)
        self.mutation_seconds.append(time.perf_counter() - started)
        if announce:
            change = diff_results(qid, before, entries, cause="update")
            if change.changed:
                self._hub.dispatch({qid: change})
        return entries

    # ------------------------------------------------------------------
    # Push subscriptions
    # ------------------------------------------------------------------

    def subscribe(
        self, qid, callback: Callable[[ResultChange], None]
    ) -> Subscription:
        """Deliver every future delta of ``qid`` to ``callback``
        (cycle maintenance, update, resume, and the final cancel).
        Callbacks run synchronously after each cycle's maintenance has
        been timed."""
        self._require(qid)
        return self._hub.subscribe(int(qid), callback)

    def subscribe_all(
        self, callback: Callable[[ResultChange], None]
    ) -> Subscription:
        """Fan-in: deliver every delta of *every* query (current and
        future, including ``cause="register"`` initial results) to one
        callback."""
        if self._closed:
            raise StreamError(
                f"subscribe_all on a closed monitor ({self._describe()})"
            )
        return self._hub.subscribe_all(callback)

    def changes(
        self,
        qid=None,
        maxlen: Optional[int] = None,
        block: bool = False,
    ) -> ChangeStream:
        """A buffered :class:`~repro.core.subscriptions.ChangeStream`
        of future deltas — of one query, or of the whole monitor when
        ``qid`` is None.

        ``maxlen`` bounds the buffer (default
        :data:`~repro.core.subscriptions.DEFAULT_STREAM_MAXLEN`; on
        overflow the oldest delta is dropped and counted — see
        :meth:`delivery_stats`). ``block=True`` makes iteration wait
        for the next delta instead of stopping when dry; a blocked
        iterator terminates cleanly when the stream closes, the query
        is cancelled, or the monitor shuts down.
        """
        if qid is None:
            if self._closed:
                raise StreamError(
                    f"changes() on a closed monitor ({self._describe()})"
                )
            return self._hub.stream(None, maxlen=maxlen, block=block)
        self._require(qid)
        return self._hub.stream(int(qid), maxlen=maxlen, block=block)

    def delivery_stats(self) -> Dict[str, int]:
        """Aggregate push-delivery accounting: live subscriptions and
        streams, deltas buffered in stream FIFOs, deltas dropped to
        buffer bounds (``dropped_changes``), and the deepest buffer
        ever observed (``high_watermark``)."""
        return self._hub.stats()

    @property
    def dropped_changes(self) -> int:
        """Total deltas dropped to :class:`ChangeStream` buffer bounds
        (0 means every delivered stream still has full replay
        parity)."""
        return self._hub.dropped_changes

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def make_records(
        self, rows: Sequence[Sequence[float]], time_: Optional[float] = None
    ) -> List[StreamRecord]:
        """Mint records (ids assigned in order) for ad-hoc streams."""
        stamp = self._clock if time_ is None else time_
        return [self._factory.make(row, stamp) for row in rows]

    def process(
        self,
        arrivals: Sequence[StreamRecord],
        now: Optional[float] = None,
        deletions: Optional[Sequence[StreamRecord]] = None,
    ) -> CycleReport:
        """Run one processing cycle and return the change report.

        ``now`` defaults to the latest arrival time (or the previous
        clock when the batch is empty); it drives time-based eviction
        and must never move backwards.

        Under the default window model, ``deletions`` must be None:
        records leave by expiry. Arrivals already expired at ``now``
        (possible under a time-based window when a batch spans more
        than the window duration) are dropped without touching the
        algorithm and counted in the report's ``dead_on_arrival``.

        Under ``stream_model="update"``, ``deletions`` carries the
        batch of explicit deletions; the whole batch is validated
        before anything mutates.

        After maintenance, the report's changes are pushed to every
        matching subscriber (merged across shards first in a sharded
        run).
        """
        self._ensure_open("process")
        tracer = self.tracer
        tracer.begin_cycle()
        with tracer.span("ingest"):
            now, live, expirations, dead = self._ingest(
                arrivals, now, deletions
            )

        started = time.perf_counter()
        changes: Dict[int, ResultChange] = self.algorithm.process_cycle(
            live, expirations
        )
        elapsed = time.perf_counter() - started
        self.cycle_seconds.append(elapsed)

        report = CycleReport(
            timestamp=now,
            arrivals=len(live),
            expirations=len(expirations),
            changes=changes,
            cpu_seconds=elapsed,
            dead_on_arrival=dead,
        )
        if not self._hub.empty:
            with tracer.span("dispatch"):
                self._hub.dispatch(report.changes)
        tracer.end_cycle(
            arrivals=len(live),
            expirations=len(expirations),
            changes=len(changes),
        )
        return report

    def _ingest(
        self,
        arrivals: Sequence[StreamRecord],
        now: Optional[float],
        deletions: Optional[Sequence[StreamRecord]],
    ):
        """Advance the clock and apply one batch to the window (or the
        update-model live set). Returns ``(now, live, expirations,
        dead_on_arrival)`` — everything :meth:`process` needs before
        handing the cycle to the algorithm."""
        if now is None:
            now = max(
                [self._clock] + [record.time for record in arrivals]
            )
        if now < self._clock:
            raise StreamError(
                f"clock moved backwards: {now} < {self._clock}"
            )
        self._clock = now

        if self.stream_model == "update":
            live, expirations = self._apply_update_batch(
                arrivals, deletions
            )
            return now, live, expirations, 0

        if deletions is not None:
            raise StreamError(
                "explicit deletions require "
                "StreamMonitor(..., stream_model='update'); the "
                "window model expires records by age"
            )
        live = []
        dead = 0
        for record in arrivals:
            if self.window.admits(record, now):
                self.window.insert(record)
                live.append(record)
            else:
                # Dropped, but it still arrived: keep the
                # stream-order validation (and clock) a normal
                # insert would apply.
                self.window.observe(record)
                dead += 1
        expirations = self.window.evict(now)
        return now, live, expirations, dead

    def process_many(
        self,
        batches: Sequence[Sequence[StreamRecord]],
        nows: Optional[Sequence[float]] = None,
    ) -> List[CycleReport]:
        """Process a run of cycles, pipelining when the algorithm can.

        For in-process algorithms this is exactly ``[process(batch) for
        batch in batches]``. A sharded algorithm exposes the
        begin/finish cycle split (``supports_pipelining``), and this
        method overlaps the *coordinator's* per-cycle work — window
        maintenance plus the columnar snapshot encode of cycle *t+1* —
        with the shards still computing cycle *t*, instead of the
        strict send-all/recv-all lockstep of :meth:`process`. Reports
        come back in cycle order, results and deltas are bitwise
        identical to sequential processing, and every cycle is fully
        merged (and its deltas dispatched) before this method returns.

        Per-cycle ``cycle_seconds`` under pipelining measure the
        coordinator's *blocking* time for that cycle (encode + send +
        reply wait + merge); the shard compute hidden under the next
        cycle's encode no longer shows up, which is the point.

        ``nows`` optionally provides one explicit clock value per
        batch (same semantics as :meth:`process`'s ``now``).
        """
        self._ensure_open("process_many")
        if nows is not None and len(nows) != len(batches):
            raise StreamError(
                f"nows has {len(nows)} entries for {len(batches)} batches"
            )
        pipelined = (
            getattr(self.algorithm, "supports_pipelining", False)
            and self.stream_model == "window"
        )
        if not pipelined:
            return [
                self.process(
                    batch, now=None if nows is None else nows[index]
                )
                for index, batch in enumerate(batches)
            ]

        reports: List[CycleReport] = []
        pending = None  # (now, arrivals, expirations, dead, seconds)
        tracer = self.tracer
        try:
            for index, batch in enumerate(batches):
                # One trace per loop iteration: the previous cycle's
                # reply wait (shard_rpc) deliberately lands in *this*
                # iteration's trace — that is the coordinator's real
                # blocking structure under pipelining.
                tracer.begin_cycle(pipelined=True)
                with tracer.span("ingest"):
                    now, live, expirations, dead = self._ingest(
                        batch, None if nows is None else nows[index], None
                    )
                started = time.perf_counter()
                prepared = self.algorithm.prepare_cycle(
                    live, expirations
                )
                prep_seconds = time.perf_counter() - started
                # The encode above ran while the shards were still
                # chewing the previous cycle; only now block for their
                # replies.
                if pending is not None:
                    reports.append(self._finish_pipelined(pending))
                    pending = None
                started = time.perf_counter()
                self.algorithm.begin_cycle(prepared)
                send_seconds = time.perf_counter() - started
                pending = (
                    now,
                    len(live),
                    len(expirations),
                    dead,
                    prep_seconds + send_seconds,
                )
                tracer.end_cycle(
                    arrivals=len(live), expirations=len(expirations)
                )
            if pending is not None:
                tracer.begin_cycle(pipelined=True, tail=True)
                reports.append(self._finish_pipelined(pending))
                pending = None
                tracer.end_cycle()
            return reports
        except BaseException:
            # A failed ingest/encode must not strand the in-flight
            # cycle: collect it so its deltas dispatch, its report is
            # accounted, and the algorithm accepts new cycles again.
            if pending is not None:
                try:
                    reports.append(self._finish_pipelined(pending))
                except Exception:  # already-terminated pool etc.
                    pass
            raise

    def _finish_pipelined(self, pending) -> CycleReport:
        """Collect one in-flight pipelined cycle: merge the shard
        replies, account its coordinator-side seconds, and dispatch
        its deltas."""
        now, arrivals, expirations, dead, seconds = pending
        started = time.perf_counter()
        changes = self.algorithm.finish_cycle()
        elapsed = seconds + (time.perf_counter() - started)
        self.cycle_seconds.append(elapsed)
        report = CycleReport(
            timestamp=now,
            arrivals=arrivals,
            expirations=expirations,
            changes=changes,
            cpu_seconds=elapsed,
            dead_on_arrival=dead,
        )
        if not self._hub.empty:
            with self.tracer.span("dispatch"):
                self._hub.dispatch(report.changes)
        return report

    def _apply_update_batch(
        self,
        insertions: Sequence[StreamRecord],
        deletions: Optional[Sequence[StreamRecord]],
    ):
        """Validate and apply one explicit-deletion batch to the live
        set (whole batch validated *before* anything mutates)."""
        deletions = [] if deletions is None else list(deletions)
        inserted: Set[int] = set()
        for record in insertions:
            if record.rid in self._live or record.rid in inserted:
                raise StreamError(f"record {record.rid} inserted twice")
            inserted.add(record.rid)
        deleted: Set[int] = set()
        for record in deletions:
            known = record.rid in self._live or record.rid in inserted
            if not known or record.rid in deleted:
                raise StreamError(
                    f"deletion of unknown/already-deleted record "
                    f"{record.rid}"
                )
            deleted.add(record.rid)
        for record in insertions:
            self._live[record.rid] = record
        for record in deletions:
            self._live.pop(record.rid, None)
        return list(insertions), deletions

    def advance(self, now: float) -> CycleReport:
        """Process a cycle with no arrivals (time-based expiry only)."""
        return self.process([], now=now)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the monitor down: cancel every subscription, mark all
        live handles ``closed``, and release algorithm resources
        (worker processes of a sharded run). Idempotent — a second
        ``close()`` is a no-op; further queries/cycles raise."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            if handle._state != CANCELLED:
                handle._state = CLOSED
        # Release the handle table: handles hold the monitor, so
        # keeping them here would tie every closed monitor (and its
        # window/grid) into a reference cycle that only gen-2 GC can
        # free — large enough piles of those turn into multi-ms GC
        # pauses inside later cycle loops. After close the handles
        # are CLOSED anyway; only the caller's own references remain.
        self._handles.clear()
        self._paused.clear()
        self._hub.close()
        shutdown = getattr(self.algorithm, "close", None)
        if shutdown is not None:
            shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def __enter__(self) -> "StreamMonitor":
        """Context-manager entry: returns the monitor itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: closes the monitor (see :meth:`close`)."""
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        """Number of records currently valid (window contents, or the
        live set under the update model)."""
        if self.stream_model == "update":
            return len(self._live)
        return len(self.window)

    @property
    def live_count(self) -> int:
        """Alias of :attr:`valid_count` (update-model terminology)."""
        return self.valid_count

    @property
    def total_cpu_seconds(self) -> float:
        """Total maintenance seconds across cycles (setup excluded)."""
        return sum(self.cycle_seconds)

    @property
    def total_setup_seconds(self) -> float:
        """Total seconds spent computing initial results at
        registration — the cost ``total_cpu_seconds`` deliberately
        excludes."""
        return sum(self.setup_seconds)

    @property
    def total_mutation_seconds(self) -> float:
        """Total seconds spent in in-flight mutations (update / pause
        / resume) — excluded from both other accounts."""
        return sum(self.mutation_seconds)

    @property
    def counters(self):
        """The algorithm's operation counters (additive, resettable)."""
        return self.algorithm.counters

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """One snapshot of :attr:`metrics_registry` (counters, gauges,
        histograms — including the collect-time OpCounters mirror and,
        in a sharded run, everything merged from the workers)."""
        return self.metrics_registry.snapshot()

    def last_traces(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent per-cycle phase traces (oldest first).
        Empty unless the monitor was built with ``trace=True``."""
        return self.tracer.last_traces(n)

    def stats(self) -> Dict[str, object]:
        """One JSON-serialisable snapshot of the monitor's accounting.

        Always present: the algorithm name, query/cycle counts, the
        three timing accounts, and the operation counters. Sharded
        monitors additionally report a ``"transport"`` block
        (:meth:`~repro.parallel.sharded.ShardedMonitorAlgorithm.transport_stats`)
        with cumulative and per-cycle bytes-on-the-wire — the remote
        tier's communication-cost hook.
        """
        data: Dict[str, object] = {
            "algorithm": getattr(
                self.algorithm, "name", type(self.algorithm).__name__
            ),
            "stream_model": self.stream_model,
            "shards": self.shards,
            "queries": len(self.query_table),
            "cycles": len(self.cycle_seconds),
            "cycle_seconds": self.total_cpu_seconds,
            "setup_seconds": self.total_setup_seconds,
            "mutation_seconds": self.total_mutation_seconds,
            "counters": self.algorithm.counters.as_dict(),
        }
        transport_stats = getattr(
            self.algorithm, "transport_stats", None
        )
        if transport_stats is not None:
            data["transport"] = transport_stats()
        return data
