"""The monitoring engine: windows + algorithm + change reports.

:class:`StreamMonitor` wires together a sliding window, a monitoring
algorithm, and the query table, and exposes the processing-cycle model
of the paper: each call to :meth:`StreamMonitor.process` is one cycle —
a batch of arrivals enters the window, the records that fall out of the
window expire, the algorithm maintains every registered query, and the
per-query result changes are reported back.

Timing discipline: the engine times *only* the algorithm's maintenance
work (the paper's measured quantity), not stream generation or window
bookkeeping, and accumulates per-cycle wall-clock in
:attr:`StreamMonitor.cycle_seconds`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.core.errors import StreamError
from repro.core.queries import QueryTable, TopKQuery
from repro.core.results import CycleReport, ResultChange, ResultEntry
from repro.core.tuples import RecordFactory, StreamRecord
from repro.core.window import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms import MonitorAlgorithm


class StreamMonitor:
    """Continuous top-k monitoring over one multidimensional stream.

    Args:
        dims: data dimensionality.
        window: a :class:`~repro.core.window.SlidingWindow` instance
            (count-based or time-based).
        algorithm: algorithm name (``"tma"``, ``"sma"``, ``"tsl"``,
            ``"brute"``, or the similarity-grouped variants
            ``"tma-grouped"`` / ``"sma-grouped"``) or a pre-built
            :class:`~repro.algorithms.base.MonitorAlgorithm`.
        cells_per_axis: grid granularity for grid-based algorithms.
        **algorithm_options: forwarded to the algorithm factory —
            e.g. ``grouped=True`` makes TMA/SMA batch each cycle's
            from-scratch recomputations by preference-vector
            similarity (bitwise-identical results, shared grid
            sweeps).

    Example:
        >>> from repro import LinearFunction, TopKQuery, CountBasedWindow
        >>> monitor = StreamMonitor(2, CountBasedWindow(4), algorithm="sma",
        ...                         cells_per_axis=4)
        >>> qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 2.0]), k=1))
        >>> records = monitor.make_records([[0.3, 0.4], [0.9, 0.8]])
        >>> report = monitor.process(records)
        >>> [entry.rid for entry in monitor.result(qid)]
        [1]
    """

    def __init__(
        self,
        dims: int,
        window: SlidingWindow,
        algorithm: Union[str, "MonitorAlgorithm"] = "sma",
        cells_per_axis: Optional[int] = None,
        **algorithm_options,
    ) -> None:
        # Imported here to keep repro.core importable on its own
        # (repro.algorithms.base imports repro.core in turn).
        from repro.algorithms import MonitorAlgorithm, make_algorithm

        self.dims = dims
        self.window = window
        if isinstance(algorithm, MonitorAlgorithm):
            self.algorithm = algorithm
        else:
            self.algorithm = make_algorithm(
                algorithm, dims, cells_per_axis, **algorithm_options
            )
        self.query_table = QueryTable()
        self.cycle_seconds: List[float] = []
        self._factory = RecordFactory()
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def add_query(self, query: TopKQuery) -> int:
        """Register a query; its initial result is computed immediately."""
        qid = self.query_table.register(query)
        self.algorithm.register(query)
        return qid

    def remove_query(self, qid: int) -> None:
        """Terminate a query and scrub its book-keeping."""
        self.query_table.unregister(qid)
        self.algorithm.unregister(qid)

    def result(self, qid: int) -> List[ResultEntry]:
        """Current top-k of a query, best-first."""
        return self.algorithm.current_result(qid)

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def make_records(
        self, rows: Sequence[Sequence[float]], time_: Optional[float] = None
    ) -> List[StreamRecord]:
        """Mint records (ids assigned in order) for ad-hoc streams."""
        stamp = self._clock if time_ is None else time_
        return [self._factory.make(row, stamp) for row in rows]

    def process(
        self,
        arrivals: Sequence[StreamRecord],
        now: Optional[float] = None,
    ) -> CycleReport:
        """Run one processing cycle and return the change report.

        ``now`` defaults to the latest arrival time (or the previous
        clock when the batch is empty); it drives time-based eviction
        and must never move backwards.
        """
        if now is None:
            now = max(
                [self._clock] + [record.time for record in arrivals]
            )
        if now < self._clock:
            raise StreamError(
                f"clock moved backwards: {now} < {self._clock}"
            )
        self._clock = now

        for record in arrivals:
            self.window.insert(record)
        expirations = self.window.evict(now)

        started = time.perf_counter()
        changes: Dict[int, ResultChange] = self.algorithm.process_cycle(
            list(arrivals), expirations
        )
        elapsed = time.perf_counter() - started
        self.cycle_seconds.append(elapsed)

        return CycleReport(
            timestamp=now,
            arrivals=len(arrivals),
            expirations=len(expirations),
            changes=changes,
            cpu_seconds=elapsed,
        )

    def advance(self, now: float) -> CycleReport:
        """Process a cycle with no arrivals (time-based expiry only)."""
        return self.process([], now=now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        return len(self.window)

    @property
    def total_cpu_seconds(self) -> float:
        return sum(self.cycle_seconds)

    @property
    def counters(self):
        return self.algorithm.counters
