"""The monitoring engine: windows + algorithm + change reports.

:class:`StreamMonitor` wires together a sliding window, a monitoring
algorithm, and the query table, and exposes the processing-cycle model
of the paper: each call to :meth:`StreamMonitor.process` is one cycle —
a batch of arrivals enters the window, the records that fall out of the
window expire, the algorithm maintains every registered query, and the
per-query result changes are reported back.

Timing discipline: the engine times the algorithm's maintenance work
(the paper's measured quantity) per cycle in
:attr:`StreamMonitor.cycle_seconds`, and — separately — the initial
top-k computation each query registration performs in
:attr:`StreamMonitor.setup_seconds`, so registration cost can never
masquerade as (or hide from) maintenance cost in a comparison.

Dead-on-arrival records: under a time-based window, an arrival already
older than ``now - duration`` would be inserted and evicted within the
same cycle, feeding the algorithm the same record as both an arrival
and an expiration. The engine drops such records before the window
ever sees them and reports the count in
:attr:`~repro.core.results.CycleReport.dead_on_arrival`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.core.errors import StreamError
from repro.core.queries import QueryTable, TopKQuery
from repro.core.results import CycleReport, ResultChange, ResultEntry
from repro.core.tuples import RecordFactory, StreamRecord
from repro.core.window import SlidingWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms import MonitorAlgorithm


class StreamMonitor:
    """Continuous top-k monitoring over one multidimensional stream.

    Args:
        dims: data dimensionality.
        window: a :class:`~repro.core.window.SlidingWindow` instance
            (count-based or time-based).
        algorithm: algorithm name (``"tma"``, ``"sma"``, ``"tsl"``,
            ``"brute"``, or the similarity-grouped variants
            ``"tma-grouped"`` / ``"sma-grouped"``) or a pre-built
            :class:`~repro.algorithms.base.MonitorAlgorithm`.
        cells_per_axis: grid granularity for grid-based algorithms.
        shards: ``None``/``1`` runs the algorithm in-process (the
            default, byte-for-byte the single-process engine).
            ``N > 1`` partitions queries across N worker processes
            (:class:`~repro.parallel.sharded.ShardedMonitorAlgorithm`)
            — results are bitwise identical, maintenance parallelises.
            Requires an algorithm *name* (workers build their own
            instances).
        **algorithm_options: forwarded to the algorithm factory —
            e.g. ``grouped=True`` makes TMA/SMA batch each cycle's
            from-scratch recomputations by preference-vector
            similarity (bitwise-identical results, shared grid
            sweeps).

    Example:
        >>> from repro import LinearFunction, TopKQuery, CountBasedWindow
        >>> monitor = StreamMonitor(2, CountBasedWindow(4), algorithm="sma",
        ...                         cells_per_axis=4)
        >>> qid = monitor.add_query(TopKQuery(LinearFunction([1.0, 2.0]), k=1))
        >>> records = monitor.make_records([[0.3, 0.4], [0.9, 0.8]])
        >>> report = monitor.process(records)
        >>> [entry.rid for entry in monitor.result(qid)]
        [1]
    """

    def __init__(
        self,
        dims: int,
        window: SlidingWindow,
        algorithm: Union[str, "MonitorAlgorithm"] = "sma",
        cells_per_axis: Optional[int] = None,
        shards: Optional[int] = None,
        **algorithm_options,
    ) -> None:
        # Imported here to keep repro.core importable on its own
        # (repro.algorithms.base imports repro.core in turn).
        from repro.algorithms import MonitorAlgorithm, make_algorithm

        self.dims = dims
        self.window = window
        self.shards = 1 if shards is None else int(shards)
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if isinstance(algorithm, MonitorAlgorithm):
            if self.shards > 1:
                raise ValueError(
                    "shards > 1 requires an algorithm name (worker "
                    "processes build their own instances), not a "
                    "pre-built algorithm object"
                )
            self.algorithm = algorithm
        elif self.shards > 1:
            from repro.parallel import ShardedMonitorAlgorithm

            self.algorithm = ShardedMonitorAlgorithm(
                algorithm,
                dims,
                shards=self.shards,
                cells_per_axis=cells_per_axis,
                **algorithm_options,
            )
        else:
            self.algorithm = make_algorithm(
                algorithm, dims, cells_per_axis, **algorithm_options
            )
        self.query_table = QueryTable()
        self.cycle_seconds: List[float] = []
        #: per-registration wall-clock of the initial top-k computation
        #: (one entry per add_query / add_queries call) — kept apart
        #: from cycle_seconds so benchmarks can report setup and
        #: maintenance without either skewing the other.
        self.setup_seconds: List[float] = []
        self._factory = RecordFactory()
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def add_query(self, query: TopKQuery) -> int:
        """Register a query; its initial result is computed immediately."""
        qid = self.query_table.register(query)
        started = time.perf_counter()
        self.algorithm.register(query)
        self.setup_seconds.append(time.perf_counter() - started)
        return qid

    def add_queries(self, queries: Sequence[TopKQuery]) -> List[int]:
        """Register a burst of queries in one batch; return their qids.

        The whole burst is handed to the algorithm at once
        (:meth:`~repro.algorithms.base.MonitorAlgorithm.register_many`),
        so grouped algorithms can serve similar queries' initial top-k
        computations through shared grid sweeps, and a sharded engine
        issues one round trip per shard instead of one per query.
        Results are identical to registering one by one.
        """
        qids = [self.query_table.register(query) for query in queries]
        started = time.perf_counter()
        self.algorithm.register_many(list(queries))
        self.setup_seconds.append(time.perf_counter() - started)
        return qids

    def remove_query(self, qid: int) -> None:
        """Terminate a query and scrub its book-keeping."""
        self.query_table.unregister(qid)
        self.algorithm.unregister(qid)

    def result(self, qid: int) -> List[ResultEntry]:
        """Current top-k of a query, best-first."""
        return self.algorithm.current_result(qid)

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def make_records(
        self, rows: Sequence[Sequence[float]], time_: Optional[float] = None
    ) -> List[StreamRecord]:
        """Mint records (ids assigned in order) for ad-hoc streams."""
        stamp = self._clock if time_ is None else time_
        return [self._factory.make(row, stamp) for row in rows]

    def process(
        self,
        arrivals: Sequence[StreamRecord],
        now: Optional[float] = None,
    ) -> CycleReport:
        """Run one processing cycle and return the change report.

        ``now`` defaults to the latest arrival time (or the previous
        clock when the batch is empty); it drives time-based eviction
        and must never move backwards. Arrivals already expired at
        ``now`` (possible under a time-based window when a batch spans
        more than the window duration) are dropped without touching
        the algorithm and counted in the report's ``dead_on_arrival``.
        """
        if now is None:
            now = max(
                [self._clock] + [record.time for record in arrivals]
            )
        if now < self._clock:
            raise StreamError(
                f"clock moved backwards: {now} < {self._clock}"
            )
        self._clock = now

        live: List[StreamRecord] = []
        dead = 0
        for record in arrivals:
            if self.window.admits(record, now):
                self.window.insert(record)
                live.append(record)
            else:
                # Dropped, but it still arrived: keep the stream-order
                # validation (and clock) a normal insert would apply.
                self.window.observe(record)
                dead += 1
        expirations = self.window.evict(now)

        started = time.perf_counter()
        changes: Dict[int, ResultChange] = self.algorithm.process_cycle(
            live, expirations
        )
        elapsed = time.perf_counter() - started
        self.cycle_seconds.append(elapsed)

        return CycleReport(
            timestamp=now,
            arrivals=len(live),
            expirations=len(expirations),
            changes=changes,
            cpu_seconds=elapsed,
            dead_on_arrival=dead,
        )

    def advance(self, now: float) -> CycleReport:
        """Process a cycle with no arrivals (time-based expiry only)."""
        return self.process([], now=now)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release algorithm resources (worker processes of a sharded
        run). In-process algorithms hold none; calling this is then a
        no-op, so generic drivers can always close their monitors."""
        shutdown = getattr(self.algorithm, "close", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self) -> "StreamMonitor":
        """Context-manager entry: returns the monitor itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: closes the monitor (see :meth:`close`)."""
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def valid_count(self) -> int:
        """Number of records currently valid in the window."""
        return len(self.window)

    @property
    def total_cpu_seconds(self) -> float:
        """Total maintenance seconds across cycles (setup excluded)."""
        return sum(self.cycle_seconds)

    @property
    def total_setup_seconds(self) -> float:
        """Total seconds spent computing initial results at
        registration — the cost ``total_cpu_seconds`` deliberately
        excludes."""
        return sum(self.setup_seconds)

    @property
    def counters(self):
        """The algorithm's operation counters (additive, resettable)."""
        return self.algorithm.counters
