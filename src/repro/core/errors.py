"""Exception hierarchy for the repro library.

Every error raised on purpose by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class DimensionalityError(ReproError):
    """A record, function or region has the wrong number of dimensions."""


class NonMonotoneFunctionError(ReproError):
    """The preference function is not monotone per dimension.

    The paper's framework requires per-dimension monotonicity
    (Section 3): the influence-region argument and the grid traversal
    bound both fail otherwise. The paper's future-work section sketches
    handling piecewise-monotone functions by partitioning the space;
    that is out of scope here and this error is raised instead.
    """


class WindowError(ReproError):
    """Invalid sliding-window configuration or out-of-order arrival."""


class QueryError(ReproError):
    """Invalid query specification or unknown query id."""


class StreamError(ReproError):
    """Invalid stream driver configuration or malformed update."""
