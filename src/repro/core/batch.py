"""Backend selection and helpers for vectorized batch scoring.

Every hot path of the reproduction ultimately evaluates a monotone
preference function over many attribute vectors: the Figure-6 traversal
scores whole grid cells, TSL scores every arrival against every query,
and TMA/SMA score arrivals against the queries whose influence region
they hit. This module picks, once at import time, the *batch backend*
those paths use:

- ``numpy`` — when NumPy is importable, attribute blocks become
  ``float64`` matrices and the scoring kernels in
  :mod:`repro.core.scoring` evaluate a whole block with a handful of
  array operations;
- ``python`` — otherwise, a block is a plain list of attribute tuples
  and the kernels fall back to per-row ``score`` calls, costing exactly
  what the pre-batching code paths did.

Set the environment variable ``REPRO_BATCH_BACKEND=python`` to force
the fallback even when NumPy is installed (used by tests and by the
fallback benchmarks).

**Exactness contract.** Vectorization must not perturb results: the
paper's canonical rank order ``(score, rid)`` breaks ties by record id,
so a score that differs from the scalar path in its last bit could
reorder records near a tie and desynchronise an algorithm from the
brute-force oracle. Every kernel therefore evaluates with *the same
floating-point operations in the same order* as the scalar ``score``
(see :meth:`repro.core.scoring.PreferenceFunction.score_batch`), and
``tests/core/test_batch.py`` asserts bitwise equality per family and
backend. Helpers here preserve that: matrix construction and
``to_list`` round-trip Python floats through ``float64`` losslessly.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised indirectly via BACKEND checks
    import numpy as _numpy
except ImportError:  # pragma: no cover - environment-dependent
    _numpy = None

if os.environ.get("REPRO_BATCH_BACKEND", "").strip().lower() == "python":
    _numpy = None

#: the numpy module when the vector backend is active, else None.
np = _numpy

#: True when batch kernels run on NumPy arrays.
HAVE_NUMPY = np is not None

#: name of the selected backend: "numpy" or "python".
BACKEND = "numpy" if HAVE_NUMPY else "python"


def as_matrix(rows: Sequence[Sequence[float]]):
    """Pack attribute rows into the backend's batch representation.

    NumPy backend: a C-contiguous ``(n, d)`` float64 array (Python
    floats convert losslessly). Fallback: the rows themselves, as a
    list. Either form is accepted by
    :meth:`~repro.core.scoring.PreferenceFunction.score_batch`.
    """
    if np is not None and len(rows):
        return np.asarray(rows, dtype=np.float64)
    return list(rows)


def is_matrix(block) -> bool:
    """Whether ``block`` is a backend array (vs a plain row list)."""
    return np is not None and isinstance(block, np.ndarray)


def to_list(vector) -> List[float]:
    """Score vector as a list of Python floats (lossless conversion)."""
    if np is not None and isinstance(vector, np.ndarray):
        return vector.tolist()
    return list(vector)


def indices_at_least(vector, threshold: float) -> List[int]:
    """Indices ``i`` with ``vector[i] >= threshold``.

    The survivor prefilter of the batched cycle paths: candidates whose
    score cannot reach a query's current gate are dropped in one
    vector comparison instead of one interpreted comparison each.
    """
    if np is not None and isinstance(vector, np.ndarray):
        return np.nonzero(vector >= threshold)[0].tolist()
    return [index for index, value in enumerate(vector) if value >= threshold]


def take_at_least(vector, threshold: float):
    """``(indices, values)`` of entries with ``value >= threshold``.

    Like :func:`indices_at_least` but also gathers the surviving
    values as Python floats, so callers touching only a few survivors
    skip converting the full vector.
    """
    if np is not None and isinstance(vector, np.ndarray):
        picked = np.nonzero(vector >= threshold)[0]
        return picked.tolist(), vector[picked].tolist()
    indices = []
    values = []
    for index, value in enumerate(vector):
        if value >= threshold:
            indices.append(index)
            values.append(value)
    return indices, values


class ArrivalScorer:
    """Lazy per-function batch scores over one cycle's arrival batch.

    TSL needs every (arrival, query) score; TMA/SMA need scores only
    for the queries whose influence lists the arrivals actually hit.
    This helper serves both: the arrival matrix is packed at most once,
    and per preference function the full score vector is computed on
    first request and cached (keyed by function identity, which is
    stable for the cycle because query objects outlive it).

    Under the pure-Python backend, :meth:`score_of` degrades to a
    scalar ``score`` call per request instead of materialising a full
    batch — a query touched by a single arrival then pays exactly what
    the pre-batching code paid, keeping the fallback no slower than
    the scalar implementation it replaces.
    """

    __slots__ = ("_records", "_matrix", "_vectors", "_lists")

    def __init__(self, records: Sequence) -> None:
        self._records = records
        self._matrix = None
        self._vectors: dict = {}
        self._lists: dict = {}

    def __len__(self) -> int:
        return len(self._records)

    def _ensure_matrix(self):
        if self._matrix is None:
            self._matrix = as_matrix([r.attrs for r in self._records])
        return self._matrix

    def vector(self, function):
        """Backend-native score vector of the whole batch (cached)."""
        key = id(function)
        vector = self._vectors.get(key)
        if vector is None:
            vector = function.score_batch(self._ensure_matrix())
            self._vectors[key] = vector
        return vector

    def scores(self, function) -> List[float]:
        """Scores of the whole batch as Python floats (cached)."""
        key = id(function)
        values = self._lists.get(key)
        if values is None:
            values = to_list(self.vector(function))
            self._lists[key] = values
        return values

    def score_of(self, function, index: int) -> float:
        """Score of arrival ``index`` under ``function``.

        NumPy backend: amortised over the cached batch vector.
        Fallback: a direct scalar call (no batch materialisation).
        """
        if np is None:
            return function.score(self._records[index].attrs)
        return self.scores(function)[index]

    def survivors(self, function, min_score: float) -> List[int]:
        """Arrival indices whose score is ``>= min_score``."""
        return indices_at_least(self.vector(function), min_score)

    def take_survivors(self, function, min_score: float):
        """``(indices, values)`` of arrivals scoring ``>= min_score``.

        Gathers only the surviving scores (see :func:`take_at_least`),
        so a high gate avoids materialising the full batch as floats.
        """
        return take_at_least(self.vector(function), min_score)
