"""Monotone preference functions and rectangle score bounds.

The framework supports any scoring function that is *monotone per
dimension* (paper Section 3): increasingly monotone on some axes and
decreasingly monotone on the others. Monotonicity is what makes a grid
cell's ``maxscore`` — the score of its preference-optimal corner — an
upper bound for every point inside, which in turn is what lets the
top-k computation module stop after visiting only the cells that
intersect a query's influence region.

Three concrete families cover everything the paper evaluates:

- :class:`LinearFunction` — ``f(p) = Σ aᵢ·p.xᵢ`` (Section 8 default;
  negative weights give decreasing monotonicity as in Figure 7(a));
- :class:`ProductFunction` — ``f(p) = Π (aᵢ + p.xᵢ)`` (Figure 21(a,b));
- :class:`QuadraticFunction` — ``f(p) = Σ aᵢ·p.xᵢ²`` (Figure 21(c,d)).

:class:`CallableFunction` wraps an arbitrary user function together
with its declared monotonicity directions; :func:`check_monotone`
probe-tests a declared function and raises
:class:`~repro.core.errors.NonMonotoneFunctionError` on violations, as
a guard for user-supplied callables.
"""

from __future__ import annotations

import abc
import itertools
from typing import Callable, Optional, Sequence, Tuple

from repro.core import batch
from repro.core.errors import (
    DimensionalityError,
    NonMonotoneFunctionError,
)

#: Direction of monotonicity per dimension: +1 increasing, -1 decreasing.
Directions = Tuple[int, ...]


class PreferenceFunction(abc.ABC):
    """A per-dimension monotone scoring function.

    Attributes:
        dims: number of attributes scored.
        directions: per-dimension monotonicity, ``+1`` if larger
            attribute values increase the score, ``-1`` if they
            decrease it.
    """

    __slots__ = ("dims", "directions")

    def __init__(self, dims: int, directions: Sequence[int]) -> None:
        if dims <= 0:
            raise DimensionalityError(f"dims must be positive, got {dims}")
        if len(directions) != dims:
            raise DimensionalityError(
                f"{len(directions)} directions for {dims} dimensions"
            )
        if any(direction not in (-1, 1) for direction in directions):
            raise NonMonotoneFunctionError(
                "directions must be +1 (increasing) or -1 (decreasing); "
                f"got {tuple(directions)}"
            )
        self.dims = dims
        self.directions: Directions = tuple(directions)

    @abc.abstractmethod
    def score(self, attrs: Sequence[float]) -> float:
        """Score a point given its attribute vector."""

    def score_batch(self, matrix) -> Sequence[float]:
        """Score a block of attribute vectors in one call.

        ``matrix`` is whatever :func:`repro.core.batch.as_matrix`
        produced: a ``(n, d)`` float64 array under the NumPy backend,
        or a list of attribute tuples under the fallback. Returns a
        same-length score vector (array or list respectively).

        **Exactness contract**: for every row, the batched result is
        the value :meth:`score` returns for that row — computed with
        the same floating-point operations in the same order, so ties
        under the canonical ``(score, rid)`` rank order are preserved
        bit-for-bit (vectorization must never desynchronise an
        algorithm from the brute-force oracle). Subclasses overriding
        the NumPy path must keep per-row evaluation order identical to
        their scalar ``score``; this default simply delegates row by
        row and is always exact.
        """
        return [self.score(row) for row in matrix]

    def maxscore_delta(self, dim: int, delta: float) -> Optional[float]:
        """Drop in box maxscore per ``delta``-sized step along ``dim``.

        When a box of extent ``delta`` moves one step *down* the
        preference order along dimension ``dim``, some families lose a
        constant amount of maxscore (linear: ``|a_dim| * delta``),
        which lets the grid traversal price neighbour cells without a
        ``bounds_of`` + ``score`` round trip. Returns None when the
        decrement is not constant (the generic case: quadratic and
        product scores depend on where the box sits).
        """
        return None

    def best_corner(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> Tuple[float, ...]:
        """Preference-optimal corner of the box ``[lower, upper]``.

        Picks the upper bound on increasing dimensions and the lower
        bound on decreasing ones — the corner that dominates every
        point in the box (Section 3.1: "all records falling in a
        rectangle R are dominated by its top-right corner").
        """
        return tuple(
            upper[i] if self.directions[i] > 0 else lower[i]
            for i in range(self.dims)
        )

    def worst_corner(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> Tuple[float, ...]:
        """Preference-pessimal corner (lower bound for points inside)."""
        return tuple(
            lower[i] if self.directions[i] > 0 else upper[i]
            for i in range(self.dims)
        )

    def maxscore(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> float:
        """Upper bound of the score of any point in ``[lower, upper]``."""
        return self.score(self.best_corner(lower, upper))

    def minscore(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> float:
        """Lower bound of the score of any point in ``[lower, upper]``."""
        return self.score(self.worst_corner(lower, upper))

    def describe(self) -> str:
        """Human-readable formula (used by examples and reports)."""
        return repr(self)


class LinearFunction(PreferenceFunction):
    """``f(p) = Σ aᵢ·p.xᵢ`` — the paper's default query family.

    The sign of each weight determines the monotonicity direction of
    that dimension. A zero weight means the dimension is ignored; it
    is treated as (non-strictly) increasing, which keeps every bound
    valid and lets callers express single-attribute preferences such
    as "top-k by throughput" in a multi-attribute stream.
    """

    __slots__ = ("weights",)

    def __init__(self, weights: Sequence[float]) -> None:
        directions = [1 if weight >= 0 else -1 for weight in weights]
        super().__init__(len(weights), directions)
        self.weights = tuple(weights)

    def score(self, attrs: Sequence[float]) -> float:
        total = 0.0
        for weight, value in zip(self.weights, attrs):
            total += weight * value
        return total

    def score_batch(self, matrix) -> Sequence[float]:
        if not batch.is_matrix(matrix):
            return [self.score(row) for row in matrix]
        # Column-at-a-time accumulation: each elementwise multiply and
        # add rounds exactly like the scalar loop's, keeping the batch
        # bitwise equal to per-row score() (a single matmul would sum
        # in a different order and could flip last-bit ties).
        weights = self.weights
        out = matrix[:, 0] * weights[0]
        for dim in range(1, self.dims):
            out += matrix[:, dim] * weights[dim]
        return out

    def maxscore_delta(self, dim: int, delta: float) -> Optional[float]:
        return abs(self.weights[dim]) * delta

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{weight:g}*x{i + 1}" for i, weight in enumerate(self.weights)
        )
        return f"Linear({terms})"


class ProductFunction(PreferenceFunction):
    """``f(p) = Π (aᵢ + p.xᵢ)`` with ``aᵢ ≥ 0`` (Figure 21(a,b)).

    Increasingly monotone on every dimension over the unit workspace
    as long as every factor stays non-negative, which ``aᵢ ≥ 0`` and
    attributes in [0, 1] guarantee.
    """

    __slots__ = ("offsets",)

    def __init__(self, offsets: Sequence[float]) -> None:
        if any(offset < 0 for offset in offsets):
            raise NonMonotoneFunctionError(
                "product offsets must be non-negative for monotonicity "
                "over the unit workspace"
            )
        super().__init__(len(offsets), [1] * len(offsets))
        self.offsets = tuple(offsets)

    def score(self, attrs: Sequence[float]) -> float:
        product = 1.0
        for offset, value in zip(self.offsets, attrs):
            product *= offset + value
        return product

    def score_batch(self, matrix) -> Sequence[float]:
        if not batch.is_matrix(matrix):
            return [self.score(row) for row in matrix]
        offsets = self.offsets
        out = matrix[:, 0] + offsets[0]
        for dim in range(1, self.dims):
            out *= matrix[:, dim] + offsets[dim]
        return out

    def __repr__(self) -> str:
        terms = " * ".join(
            f"({offset:g}+x{i + 1})" for i, offset in enumerate(self.offsets)
        )
        return f"Product({terms})"


class QuadraticFunction(PreferenceFunction):
    """``f(p) = Σ aᵢ·p.xᵢ²`` (Figure 21(c,d)).

    Over the unit workspace (xᵢ ≥ 0) a positive weight is increasingly
    monotone and a negative weight decreasingly monotone; zero weights
    ignore the dimension (treated as non-strictly increasing).
    """

    __slots__ = ("weights",)

    def __init__(self, weights: Sequence[float]) -> None:
        directions = [1 if weight >= 0 else -1 for weight in weights]
        super().__init__(len(weights), directions)
        self.weights = tuple(weights)

    def score(self, attrs: Sequence[float]) -> float:
        total = 0.0
        for weight, value in zip(self.weights, attrs):
            total += weight * value * value
        return total

    def score_batch(self, matrix) -> Sequence[float]:
        if not batch.is_matrix(matrix):
            return [self.score(row) for row in matrix]
        weights = self.weights
        out = matrix[:, 0] * weights[0]
        out *= matrix[:, 0]
        for dim in range(1, self.dims):
            term = matrix[:, dim] * weights[dim]
            term *= matrix[:, dim]
            out += term
        return out

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{weight:g}*x{i + 1}^2" for i, weight in enumerate(self.weights)
        )
        return f"Quadratic({terms})"


class CallableFunction(PreferenceFunction):
    """Wrap a user-supplied callable with declared directions.

    The caller asserts monotonicity; use :func:`check_monotone` to
    probe-test the declaration on sampled points before trusting it in
    a long-running monitor.
    """

    __slots__ = ("_fn", "_label")

    def __init__(
        self,
        fn: Callable[..., float],
        directions: Sequence[int],
        label: str = "user-function",
    ) -> None:
        super().__init__(len(directions), directions)
        self._fn = fn
        self._label = label

    def score(self, attrs: Sequence[float]) -> float:
        return self._fn(*attrs)

    def __repr__(self) -> str:
        return f"Callable({self._label}, directions={self.directions})"


def check_monotone(
    function: PreferenceFunction,
    samples: int = 64,
    step: float = 0.125,
    seed: int = 7,
) -> None:
    """Probe-test the declared monotonicity of ``function``.

    Samples points in the unit workspace, perturbs one coordinate at a
    time in the declared preference direction, and verifies the score
    does not decrease.

    Raises:
        NonMonotoneFunctionError: on the first violated probe.
    """
    import random

    rng = random.Random(seed)
    for _ in range(samples):
        point = [rng.random() for _ in range(function.dims)]
        base = function.score(point)
        for dim in range(function.dims):
            direction = function.directions[dim]
            moved = list(point)
            moved[dim] = min(1.0, max(0.0, moved[dim] + direction * step))
            if function.score(moved) < base - 1e-12:
                raise NonMonotoneFunctionError(
                    f"{function!r} is not {'increasing' if direction > 0 else 'decreasing'} "
                    f"on dimension {dim}: score({moved}) < score({point})"
                )


def global_best_corner(function: PreferenceFunction) -> Tuple[float, ...]:
    """Corner of the unit workspace with the maximum possible score.

    For an all-increasing function this is ``(1, 1, ..., 1)`` — the
    point the paper notes "dominates every other tuple".
    """
    return function.best_corner([0.0] * function.dims, [1.0] * function.dims)


def enumerate_corners(
    lower: Sequence[float], upper: Sequence[float]
) -> Sequence[Tuple[float, ...]]:
    """All 2^d corners of a box — used by tests to validate maxscore."""
    ranges = [(lower[i], upper[i]) for i in range(len(lower))]
    return [tuple(corner) for corner in itertools.product(*ranges)]
