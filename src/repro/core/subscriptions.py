"""Push delivery of result changes: subscriptions and change streams.

The paper's engine is pull-based — clients poke ``report.changes``
after every cycle. Production monitors (top-k publish/subscribe over
sliding windows) invert that: a standing query *notifies* its
subscribers whenever its result moves. This module is the delivery
layer behind :meth:`~repro.core.handles.QueryHandle.subscribe`,
:meth:`~repro.core.handles.QueryHandle.changes` and
:meth:`~repro.core.engine.StreamMonitor.subscribe_all`:

- a :class:`Subscription` is one registered callback (per query or
  monitor-wide) with a :meth:`~Subscription.cancel` switch;
- a :class:`ChangeStream` is a buffered pull-side view of a push
  subscription: deltas accumulate between cycles and are drained by
  iterating the stream;
- the :class:`SubscriptionHub` owns both and fans each
  :class:`~repro.core.results.ResultChange` out after the engine
  builds its cycle report (or emits a synthetic delta for
  registration / update / resume / cancel).

Delivery is synchronous and in-dispatch-order: callbacks run on the
caller's thread *after* the cycle's maintenance has been timed, so
subscriber work never pollutes ``cycle_seconds``. Callbacks must not
mutate the delivered change objects (they are shared with the cycle
report) and should not re-enter the monitor mid-dispatch. For
*asynchronous* delivery — bounded per-subscriber queues drained by
dedicated consumer threads, with selectable overflow policies — layer
:class:`repro.service.DeliveryHub` on top of this hub; it is the
delivery path the network front-end (:mod:`repro.service.server`)
uses.

Backpressure: every :class:`ChangeStream` buffer is **bounded**
(:data:`DEFAULT_STREAM_MAXLEN` deltas unless the creator chooses a
different ``maxlen``). A stream nobody drains can therefore never grow
the monitor without bound — when the buffer is full the oldest delta
is dropped and counted (:attr:`ChangeStream.dropped`, aggregated in
:meth:`SubscriptionHub.stats` and surfaced by the engine's
``delivery_stats()``). A consumer that must not lose deltas drains
every cycle, raises ``maxlen``, or uses a ``coalesce``-policy
:class:`repro.service.Delivery` whose resync deltas preserve replay
parity even across overflow.

Exactness contract: for any subscriber, replaying the delivered
``added``/``removed`` deltas on top of the query's result at subscribe
time reconstructs the pull API's result after every cycle — including
across :meth:`~repro.core.handles.QueryHandle.update` and pause/resume
churn, and identically for in-process and sharded monitors (sharded
deltas are dispatched from the coordinator's merged report) — provided
no delta was dropped to the buffer bound (``dropped`` stays 0).
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.results import ResultChange

#: subscription callback: receives one ResultChange per delivery.
ChangeCallback = Callable[[ResultChange], None]

#: default bound of a ChangeStream buffer. Large enough that any
#: consumer draining once per cycle never comes close (a query's
#: deltas arrive at most a handful per cycle), small enough that a
#: million abandoned streams cannot hold the process hostage.
DEFAULT_STREAM_MAXLEN = 4096


class Subscription:
    """One registered change callback; ``cancel()`` detaches it.

    Created by :meth:`SubscriptionHub.subscribe` /
    :meth:`SubscriptionHub.subscribe_all` (via the monitor or a query
    handle) — not directly.
    """

    __slots__ = ("qid", "_callback", "_hub", "_active", "_cancel_hooks")

    def __init__(
        self,
        hub: "SubscriptionHub",
        qid: Optional[int],
        callback: ChangeCallback,
    ) -> None:
        #: qid the subscription watches; None = every query (fan-in).
        self.qid = qid
        self._callback = callback
        self._hub = hub
        self._active = True
        self._cancel_hooks: List[Callable[[], None]] = []

    @property
    def active(self) -> bool:
        """False once cancelled (or the hub closed)."""
        return self._active

    def add_cancel_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` when this subscription is cancelled (query
        terminated, explicit cancel, or monitor shutdown). Runs
        immediately if already cancelled — so a late registration can
        never miss the teardown signal. Used by blocking streams and
        the async delivery layer to wake waiters instead of leaving
        them blocked forever."""
        if not self._active:
            hook()
            return
        self._cancel_hooks.append(hook)

    def cancel(self) -> None:
        """Stop deliveries. Idempotent; buffered stream deltas remain
        drainable."""
        if self._active:
            self._active = False
            self._hub._detach(self)
            hooks, self._cancel_hooks = self._cancel_hooks, []
            for hook in hooks:
                hook()

    def _deliver(self, change: ResultChange) -> None:
        if self._active:
            self._callback(change)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = "all" if self.qid is None else f"q{self.qid}"
        state = "active" if self._active else "cancelled"
        return f"Subscription({scope}, {state})"


class ChangeStream:
    """Buffered iterator over a query's (or the monitor's) deltas.

    Deltas pushed between drains accumulate in a **bounded** FIFO
    (``maxlen`` deltas, default :data:`DEFAULT_STREAM_MAXLEN`; on
    overflow the oldest delta is dropped and counted in
    :attr:`dropped`). Iterating the stream pops them in delivery
    order. Two consumption modes:

    - **non-blocking** (the default): iteration *stops* when the
      buffer runs dry — it does not block. A later cycle refills the
      buffer and iteration can simply continue::

          stream = handle.changes()
          monitor.process(batch_1)
          for change in stream:        # deltas of batch_1
              ...
          monitor.process(batch_2)
          for change in stream:        # deltas of batch_2
              ...

    - **blocking** (``block=True``): iteration waits for the next
      delta, which lets a dedicated consumer thread run ``for change
      in stream`` as its main loop. The loop terminates cleanly
      (``StopIteration``) when the stream closes — directly, via query
      cancellation, or via ``monitor.close()`` — never blocking
      forever on a dead monitor. :meth:`get` is the timeout-aware
      single-delta variant.

    Once :meth:`close` is called no further deltas arrive; anything
    already buffered stays drainable (in non-blocking mode, and
    blocking iteration also drains the remainder before stopping).
    """

    __slots__ = (
        "_buffer",
        "_subscription",
        "_closed",
        "_cond",
        "_maxlen",
        "_block",
        "_dropped",
        "_high_watermark",
        "_accountant",
        "__weakref__",
    )

    def __init__(
        self,
        subscription_factory,
        maxlen: Optional[int] = None,
        block: bool = False,
        accountant: Optional["SubscriptionHub"] = None,
    ) -> None:
        if maxlen is None:
            maxlen = DEFAULT_STREAM_MAXLEN
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._buffer: Deque[ResultChange] = deque()
        self._closed = False
        self._cond = threading.Condition()
        self._maxlen = int(maxlen)
        self._block = bool(block)
        self._dropped = 0
        self._high_watermark = 0
        #: hub notified of drops, so monitor-wide loss totals survive
        #: this stream being abandoned and garbage-collected.
        self._accountant = accountant
        self._subscription: Subscription = subscription_factory(self._push)
        # Wake blocking iterators when the subscription dies out from
        # under the stream (query cancelled, monitor closed) — the
        # regression this guards: a consumer thread blocked in
        # ``for change in stream`` must terminate on close, not hang.
        self._subscription.add_cancel_hook(self._wake)

    # ------------------------------------------------------------------
    # Producer side (hub dispatch thread)
    # ------------------------------------------------------------------

    def _push(self, change: ResultChange) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._buffer) >= self._maxlen:
                self._buffer.popleft()
                self._dropped += 1
                if self._accountant is not None:
                    self._accountant._note_stream_drop(self._maxlen)
            self._buffer.append(change)
            if len(self._buffer) > self._high_watermark:
                self._high_watermark = len(self._buffer)
            self._cond.notify_all()

    def _wake(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def qid(self) -> Optional[int]:
        """The watched qid (None for a monitor-wide stream)."""
        return self._subscription.qid

    @property
    def pending(self) -> int:
        """Deltas buffered and not yet drained."""
        return len(self._buffer)

    @property
    def maxlen(self) -> int:
        """The buffer bound (oldest delta dropped on overflow)."""
        return self._maxlen

    @property
    def dropped(self) -> int:
        """Deltas dropped to the buffer bound. A non-zero count voids
        the replay-parity guarantee for this stream — re-sync by
        pulling the query's result."""
        return self._dropped

    @property
    def high_watermark(self) -> int:
        """Largest buffer depth ever observed."""
        return self._high_watermark

    @property
    def closed(self) -> bool:
        """True once no further deltas can arrive — the stream was
        closed directly, its query was cancelled, or the monitor shut
        down."""
        return self._closed or not self._subscription.active

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def __iter__(self) -> "ChangeStream":
        return self

    def __next__(self) -> ResultChange:
        with self._cond:
            if not self._block:
                if self._buffer:
                    return self._buffer.popleft()
                raise StopIteration
            while not self._buffer and not self.closed:
                self._cond.wait()
            if self._buffer:
                return self._buffer.popleft()
            raise StopIteration

    def get(self, timeout: Optional[float] = None) -> Optional[ResultChange]:
        """Blocking pop of the next delta, regardless of the stream's
        iteration mode. Returns ``None`` when the stream is closed
        with nothing buffered, or when ``timeout`` (seconds) expires
        first."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._buffer or self.closed, timeout=timeout
            ):
                return None
            if self._buffer:
                return self._buffer.popleft()
            return None

    def drain(self) -> List[ResultChange]:
        """Pop and return every buffered delta (never blocks)."""
        with self._cond:
            drained = list(self._buffer)
            self._buffer.clear()
        return drained

    def close(self) -> None:
        """Detach from the hub and wake blocked iterators. Idempotent;
        buffered deltas remain drainable."""
        if not self._closed:
            self._closed = True
            self._subscription.cancel()
            self._wake()


class SubscriptionHub:
    """Registry and dispatcher of a monitor's subscriptions."""

    __slots__ = ("_by_qid", "_all", "_streams", "_dropped", "_overflow_hw")

    def __init__(self) -> None:
        self._by_qid: Dict[int, List[Subscription]] = {}
        self._all: List[Subscription] = []
        #: live streams, for buffered-depth accounting (weak: an
        #: abandoned stream must stay collectable).
        self._streams: "weakref.WeakSet[ChangeStream]" = weakref.WeakSet()
        #: cumulative drops across every stream this hub ever created
        #: — a collected stream's losses must not vanish from the
        #: monitor's totals.
        self._dropped = 0
        #: deepest buffer that ever overflowed (survives stream GC).
        self._overflow_hw = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def subscribe(self, qid: int, callback: ChangeCallback) -> Subscription:
        """Deliver every future delta of ``qid`` to ``callback``."""
        subscription = Subscription(self, int(qid), callback)
        self._by_qid.setdefault(subscription.qid, []).append(subscription)
        return subscription

    def subscribe_all(self, callback: ChangeCallback) -> Subscription:
        """Deliver every delta of *every* query to ``callback``."""
        subscription = Subscription(self, None, callback)
        self._all.append(subscription)
        return subscription

    def stream(
        self,
        qid: Optional[int] = None,
        maxlen: Optional[int] = None,
        block: bool = False,
    ) -> ChangeStream:
        """A buffered :class:`ChangeStream` (per query, or monitor-wide
        when ``qid`` is None). ``maxlen`` bounds the buffer (default
        :data:`DEFAULT_STREAM_MAXLEN`); ``block=True`` makes iteration
        wait for deltas instead of stopping when dry."""
        if qid is None:
            factory = self.subscribe_all
        else:
            def factory(callback, _qid=int(qid)):
                return self.subscribe(_qid, callback)
        stream = ChangeStream(
            factory, maxlen=maxlen, block=block, accountant=self
        )
        self._streams.add(stream)
        return stream

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when nobody is listening (dispatch short-circuits)."""
        return not (self._by_qid or self._all)

    def dispatch(self, changes: Dict[int, ResultChange]) -> None:
        """Fan one batch of per-query deltas out to the subscribers.

        Per-query subscribers fire before monitor-wide ones, in
        registration order; the snapshot lists tolerate callbacks that
        subscribe or cancel mid-dispatch.
        """
        if self.empty or not changes:
            return
        for qid, change in changes.items():
            for subscription in list(self._by_qid.get(qid, ())):
                subscription._deliver(change)
            for subscription in list(self._all):
                subscription._deliver(change)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def subscription_count(self) -> int:
        """Live subscriptions (per-query + monitor-wide)."""
        return sum(len(bucket) for bucket in self._by_qid.values()) + len(
            self._all
        )

    def _note_stream_drop(self, depth: int) -> None:
        self._dropped += 1
        if depth > self._overflow_hw:
            self._overflow_hw = depth

    @property
    def dropped_changes(self) -> int:
        """Total deltas dropped to stream buffer bounds — cumulative
        over the hub's lifetime, including streams since abandoned
        and garbage-collected."""
        return self._dropped

    def stats(self) -> Dict[str, int]:
        """Aggregate delivery accounting across this hub's streams.

        ``dropped_changes`` is cumulative (drops of collected streams
        stay counted); ``streams``/``buffered_changes`` cover the
        streams currently alive.
        """
        streams = list(self._streams)
        return {
            "subscriptions": self.subscription_count,
            "streams": len(streams),
            "buffered_changes": sum(s.pending for s in streams),
            "dropped_changes": self._dropped,
            "high_watermark": max(
                (s.high_watermark for s in streams),
                default=self._overflow_hw,
            ),
        }

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _detach(self, subscription: Subscription) -> None:
        if subscription.qid is None:
            try:
                self._all.remove(subscription)
            except ValueError:  # already detached
                pass
            return
        bucket = self._by_qid.get(subscription.qid)
        if bucket is None:
            return
        try:
            bucket.remove(subscription)
        except ValueError:
            pass
        if not bucket:
            del self._by_qid[subscription.qid]

    def drop_query(self, qid: int) -> None:
        """Cancel every per-query subscription of a terminated qid.

        Called *after* the final ``cause="cancel"`` delta has been
        dispatched, so streams keep that delta buffered (and blocked
        stream iterators wake up to drain it, then stop).
        """
        for subscription in list(self._by_qid.get(int(qid), ())):
            subscription.cancel()

    def close(self) -> None:
        """Cancel every subscription (monitor shutdown). Idempotent.

        Cancel hooks fire for every subscription, so blocking stream
        iterators and async deliveries terminate instead of waiting on
        a monitor that will never dispatch again.
        """
        for bucket in list(self._by_qid.values()):
            for subscription in list(bucket):
                subscription.cancel()
        for subscription in list(self._all):
            subscription.cancel()
        self._by_qid.clear()
        self._all.clear()
