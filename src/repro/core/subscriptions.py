"""Push delivery of result changes: subscriptions and change streams.

The paper's engine is pull-based — clients poke ``report.changes``
after every cycle. Production monitors (top-k publish/subscribe over
sliding windows) invert that: a standing query *notifies* its
subscribers whenever its result moves. This module is the delivery
layer behind :meth:`~repro.core.handles.QueryHandle.subscribe`,
:meth:`~repro.core.handles.QueryHandle.changes` and
:meth:`~repro.core.engine.StreamMonitor.subscribe_all`:

- a :class:`Subscription` is one registered callback (per query or
  monitor-wide) with a :meth:`~Subscription.cancel` switch;
- a :class:`ChangeStream` is a buffered pull-side view of a push
  subscription: deltas accumulate between cycles and are drained by
  iterating the stream;
- the :class:`SubscriptionHub` owns both and fans each
  :class:`~repro.core.results.ResultChange` out after the engine
  builds its cycle report (or emits a synthetic delta for
  registration / update / resume / cancel).

Delivery is synchronous and in-dispatch-order: callbacks run on the
caller's thread *after* the cycle's maintenance has been timed, so
subscriber work never pollutes ``cycle_seconds``. Callbacks must not
mutate the delivered change objects (they are shared with the cycle
report) and should not re-enter the monitor mid-dispatch.

Exactness contract: for any subscriber, replaying the delivered
``added``/``removed`` deltas on top of the query's result at subscribe
time reconstructs the pull API's result after every cycle — including
across :meth:`~repro.core.handles.QueryHandle.update` and pause/resume
churn, and identically for in-process and sharded monitors (sharded
deltas are dispatched from the coordinator's merged report).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.results import ResultChange

#: subscription callback: receives one ResultChange per delivery.
ChangeCallback = Callable[[ResultChange], None]


class Subscription:
    """One registered change callback; ``cancel()`` detaches it.

    Created by :meth:`SubscriptionHub.subscribe` /
    :meth:`SubscriptionHub.subscribe_all` (via the monitor or a query
    handle) — not directly.
    """

    __slots__ = ("qid", "_callback", "_hub", "_active")

    def __init__(
        self,
        hub: "SubscriptionHub",
        qid: Optional[int],
        callback: ChangeCallback,
    ) -> None:
        #: qid the subscription watches; None = every query (fan-in).
        self.qid = qid
        self._callback = callback
        self._hub = hub
        self._active = True

    @property
    def active(self) -> bool:
        """False once cancelled (or the hub closed)."""
        return self._active

    def cancel(self) -> None:
        """Stop deliveries. Idempotent; buffered stream deltas remain
        drainable."""
        if self._active:
            self._active = False
            self._hub._detach(self)

    def _deliver(self, change: ResultChange) -> None:
        if self._active:
            self._callback(change)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = "all" if self.qid is None else f"q{self.qid}"
        state = "active" if self._active else "cancelled"
        return f"Subscription({scope}, {state})"


class ChangeStream:
    """Buffered iterator over a query's (or the monitor's) deltas.

    Deltas pushed between drains accumulate in an unbounded FIFO;
    iterating the stream pops them in delivery order and *stops* when
    the buffer runs dry — it does not block. A later cycle refills the
    buffer and iteration can simply continue::

        stream = handle.changes()
        monitor.process(batch_1)
        for change in stream:        # deltas of batch_1
            ...
        monitor.process(batch_2)
        for change in stream:        # deltas of batch_2
            ...

    Once :meth:`close` is called (directly, via query cancellation, or
    by ``monitor.close()``) no further deltas arrive; anything already
    buffered stays drainable.
    """

    __slots__ = ("_buffer", "_subscription", "_closed")

    def __init__(self, subscription_factory) -> None:
        self._buffer: Deque[ResultChange] = deque()
        self._closed = False
        self._subscription: Subscription = subscription_factory(
            self._buffer.append
        )

    @property
    def qid(self) -> Optional[int]:
        """The watched qid (None for a monitor-wide stream)."""
        return self._subscription.qid

    @property
    def pending(self) -> int:
        """Deltas buffered and not yet drained."""
        return len(self._buffer)

    @property
    def closed(self) -> bool:
        """True once no further deltas can arrive — the stream was
        closed directly, its query was cancelled, or the monitor shut
        down."""
        return self._closed or not self._subscription.active

    def __iter__(self) -> "ChangeStream":
        return self

    def __next__(self) -> ResultChange:
        if self._buffer:
            return self._buffer.popleft()
        raise StopIteration

    def drain(self) -> List[ResultChange]:
        """Pop and return every buffered delta."""
        drained = list(self._buffer)
        self._buffer.clear()
        return drained

    def close(self) -> None:
        """Detach from the hub. Idempotent; buffered deltas remain."""
        if not self._closed:
            self._closed = True
            self._subscription.cancel()


class SubscriptionHub:
    """Registry and dispatcher of a monitor's subscriptions."""

    __slots__ = ("_by_qid", "_all")

    def __init__(self) -> None:
        self._by_qid: Dict[int, List[Subscription]] = {}
        self._all: List[Subscription] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def subscribe(self, qid: int, callback: ChangeCallback) -> Subscription:
        """Deliver every future delta of ``qid`` to ``callback``."""
        subscription = Subscription(self, int(qid), callback)
        self._by_qid.setdefault(subscription.qid, []).append(subscription)
        return subscription

    def subscribe_all(self, callback: ChangeCallback) -> Subscription:
        """Deliver every delta of *every* query to ``callback``."""
        subscription = Subscription(self, None, callback)
        self._all.append(subscription)
        return subscription

    def stream(self, qid: Optional[int] = None) -> ChangeStream:
        """A buffered :class:`ChangeStream` (per query, or monitor-wide
        when ``qid`` is None)."""
        if qid is None:
            return ChangeStream(self.subscribe_all)
        return ChangeStream(
            lambda callback: self.subscribe(int(qid), callback)
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when nobody is listening (dispatch short-circuits)."""
        return not (self._by_qid or self._all)

    def dispatch(self, changes: Dict[int, ResultChange]) -> None:
        """Fan one batch of per-query deltas out to the subscribers.

        Per-query subscribers fire before monitor-wide ones, in
        registration order; the snapshot lists tolerate callbacks that
        subscribe or cancel mid-dispatch.
        """
        if self.empty or not changes:
            return
        for qid, change in changes.items():
            for subscription in list(self._by_qid.get(qid, ())):
                subscription._deliver(change)
            for subscription in list(self._all):
                subscription._deliver(change)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _detach(self, subscription: Subscription) -> None:
        if subscription.qid is None:
            try:
                self._all.remove(subscription)
            except ValueError:  # already detached
                pass
            return
        bucket = self._by_qid.get(subscription.qid)
        if bucket is None:
            return
        try:
            bucket.remove(subscription)
        except ValueError:
            pass
        if not bucket:
            del self._by_qid[subscription.qid]

    def drop_query(self, qid: int) -> None:
        """Cancel every per-query subscription of a terminated qid.

        Called *after* the final ``cause="cancel"`` delta has been
        dispatched, so streams keep that delta buffered.
        """
        for subscription in list(self._by_qid.get(int(qid), ())):
            subscription.cancel()

    def close(self) -> None:
        """Cancel every subscription (monitor shutdown). Idempotent."""
        for bucket in list(self._by_qid.values()):
            for subscription in list(bucket):
                subscription.cancel()
        for subscription in list(self._all):
            subscription.cancel()
        self._by_qid.clear()
        self._all.clear()
