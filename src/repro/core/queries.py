"""Query specifications and the query table QT.

The paper's query table (Section 4.1) stores per query: a unique id,
the scoring function, the requested result cardinality k, and the
current result. The *result state* (top list / skyband / materialized
view) belongs to the monitoring algorithm, so here a query is the pure
specification; algorithms attach their state keyed by ``qid``.

Three query species from the paper:

- :class:`TopKQuery` — the primary contribution (Sections 4–5);
- :class:`ConstrainedTopKQuery` — top-k restricted to a rectangular
  constraint region (Section 7, Figure 12);
- :class:`ThresholdQuery` — monitor all points with score above a
  user threshold (Section 7).

:class:`QueryGroupRegistry` clusters registered linear top-k queries
by preference-vector similarity so the grouped traversal
(:func:`repro.grid.traversal.compute_top_k_group`) can serve a whole
cluster in one grid sweep; see its docstring for the grouping
heuristic and the exactness guarantees the consumers rely on.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import QueryError
from repro.core.regions import Rectangle
from repro.core.scoring import LinearFunction, PreferenceFunction


@dataclass(eq=False)
class TopKQuery:
    """Continuous top-k query specification.

    Attributes:
        function: per-dimension monotone preference function.
        k: number of results to maintain (>= 1).
        label: optional human-readable name for reports.
        qid: assigned by :class:`QueryTable` at registration; -1 before.
        accuracy: optional (ε,δ) contract opting the query into the
            approximate tier (:mod:`repro.approx`); ``None`` — the
            default — keeps the exact maintenance path.
    """

    function: PreferenceFunction
    k: int
    label: str = ""
    qid: int = -1
    accuracy: Optional[object] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")

    @property
    def dims(self) -> int:
        return self.function.dims

    def score(self, attrs) -> float:
        return self.function.score(attrs)

    def __repr__(self) -> str:
        name = self.label or f"q{self.qid}"
        return f"TopKQuery({name}, k={self.k}, f={self.function!r})"


@dataclass(eq=False)
class ConstrainedTopKQuery(TopKQuery):
    """Top-k over points inside a rectangular constraint region."""

    constraint: Rectangle = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.constraint is None:
            raise QueryError("constrained query requires a constraint region")
        if self.constraint.dims != self.function.dims:
            raise QueryError(
                f"constraint has {self.constraint.dims} dims, function "
                f"{self.function.dims}"
            )

    def admits(self, attrs) -> bool:
        return self.constraint.contains(attrs)

    def __repr__(self) -> str:
        name = self.label or f"q{self.qid}"
        return (
            f"ConstrainedTopKQuery({name}, k={self.k}, f={self.function!r}, "
            f"R={self.constraint.lower}..{self.constraint.upper})"
        )


@dataclass(eq=False)
class ThresholdQuery:
    """Monitor every valid point whose score exceeds ``threshold``."""

    function: PreferenceFunction
    threshold: float
    label: str = ""
    qid: int = -1

    @property
    def dims(self) -> int:
        return self.function.dims

    def score(self, attrs) -> float:
        return self.function.score(attrs)

    def __repr__(self) -> str:
        name = self.label or f"q{self.qid}"
        return f"ThresholdQuery({name}, t={self.threshold:g}, f={self.function!r})"


#: bucket identity of a groupable query: monotonicity directions plus
#: the angularly quantized unit preference vector.
GroupKey = Tuple[Tuple[int, ...], Tuple[int, ...]]


class QueryGroupRegistry:
    """Clusters linear top-k queries by preference-vector similarity.

    Queries whose preference vectors point in nearly the same direction
    visit nearly the same grid cells in nearly the same order, so the
    grouped traversal can serve them all in one sweep (the
    publish/subscribe trick of grouping similar subscriptions). The
    registry assigns each *groupable* query a bucket key:

    - the per-dimension monotonicity ``directions`` (queries in one
      group must share the traversal's start corner and step relation),
    - the weight vector normalized to unit length and quantized to
      ``resolution`` steps per component (angular buckets — scaling a
      preference function does not change its top-k, and the bucket
      width shrinks as ``resolution`` grows).

    Only plain :class:`TopKQuery` instances over a
    :class:`~repro.core.scoring.LinearFunction` are groupable:
    constrained queries clip cells per region and non-linear families
    lack the exact per-cell maxscore tables the shared sweep prices
    cells with. Everything else always forms a singleton group, so a
    caller can route *all* its queries through :meth:`partition`.

    Grouping is a pure performance heuristic — the grouped traversal
    returns bitwise-identical results for any group whose members share
    ``directions``, so a "wrong" bucket can cost time, never
    correctness. Membership is maintained incrementally: :meth:`add` /
    :meth:`discard` on every query churn keep the key map current, and
    :meth:`partition` reads it directly.
    """

    __slots__ = ("resolution", "max_group_size", "_keys")

    def __init__(self, resolution: int = 4, max_group_size: int = 64) -> None:
        if resolution < 1:
            raise QueryError(f"resolution must be >= 1, got {resolution}")
        if max_group_size < 1:
            raise QueryError(
                f"max_group_size must be >= 1, got {max_group_size}"
            )
        self.resolution = resolution
        self.max_group_size = max_group_size
        self._keys: Dict[int, GroupKey] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, qid: int) -> bool:
        return qid in self._keys

    @staticmethod
    def groupable(query) -> bool:
        """Whether ``query`` may share a traversal with similar peers."""
        return (
            type(query) is TopKQuery
            and type(query.function) is LinearFunction
        )

    def key_of(self, query) -> Optional[GroupKey]:
        """Bucket key of ``query``; None when it is not groupable."""
        if not self.groupable(query):
            return None
        weights = query.function.weights
        norm = math.sqrt(sum(weight * weight for weight in weights))
        if norm == 0.0:
            return None  # degenerate all-zero preference: keep solo
        quantized = tuple(
            round(weight / norm * self.resolution) for weight in weights
        )
        return (query.function.directions, quantized)

    def add(self, query) -> None:
        """Record a registered query (no-op when not groupable)."""
        key = self.key_of(query)
        if key is not None:
            self._keys[query.qid] = key

    def discard(self, qid: int) -> None:
        """Forget a terminated query (no-op when never recorded)."""
        self._keys.pop(qid, None)

    def groups(self) -> List[List[int]]:
        """Current full clustering as qid lists. Introspection/testing
        helper — cycle code uses :meth:`partition` on just the queries
        it must recompute."""
        buckets: Dict[GroupKey, List[int]] = {}
        for qid, key in self._keys.items():
            buckets.setdefault(key, []).append(qid)
        return list(buckets.values())

    def partition(self, queries: Sequence) -> List[List]:
        """Split ``queries`` into traversal groups.

        Queries sharing a bucket key group together (capped at
        ``max_group_size`` per group); unknown or ungroupable queries
        come back as singletons. Order is deterministic: groups appear
        in first-member order, members keep the caller's order — so a
        caller iterating a stable query set gets stable groups.
        """
        clustered: Dict[GroupKey, List] = {}
        ordered: List[List] = []
        for query in queries:
            key = self._keys.get(query.qid)
            if key is None:
                ordered.append([query])
                continue
            members = clustered.get(key)
            if members is None:
                members = clustered[key] = [query]
                ordered.append(members)
            else:
                members.append(query)
        limit = self.max_group_size
        out: List[List] = []
        for members in ordered:
            for start in range(0, len(members), limit):
                out.append(members[start:start + limit])
        return out


class QueryTable:
    """Registry of running queries keyed by qid (the paper's QT)."""

    def __init__(self) -> None:
        self._queries: Dict[int, object] = {}
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[object]:
        return iter(self._queries.values())

    def __contains__(self, qid: int) -> bool:
        return qid in self._queries

    def register(self, query) -> int:
        """Assign a fresh qid and store the query; return the qid."""
        if query.qid != -1 and query.qid in self._queries:
            raise QueryError(f"query already registered with qid {query.qid}")
        qid = next(self._ids)
        query.qid = qid
        self._queries[qid] = query
        return qid

    def unregister(self, qid: int):
        """Remove and return the query with ``qid``."""
        try:
            return self._queries.pop(qid)
        except KeyError:
            raise QueryError(f"unknown query id {qid}") from None

    def get(self, qid: int):
        try:
            return self._queries[qid]
        except KeyError:
            raise QueryError(f"unknown query id {qid}") from None
