"""Query specifications and the query table QT.

The paper's query table (Section 4.1) stores per query: a unique id,
the scoring function, the requested result cardinality k, and the
current result. The *result state* (top list / skyband / materialized
view) belongs to the monitoring algorithm, so here a query is the pure
specification; algorithms attach their state keyed by ``qid``.

Three query species from the paper:

- :class:`TopKQuery` — the primary contribution (Sections 4–5);
- :class:`ConstrainedTopKQuery` — top-k restricted to a rectangular
  constraint region (Section 7, Figure 12);
- :class:`ThresholdQuery` — monitor all points with score above a
  user threshold (Section 7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.core.errors import QueryError
from repro.core.regions import Rectangle
from repro.core.scoring import PreferenceFunction


@dataclass(eq=False)
class TopKQuery:
    """Continuous top-k query specification.

    Attributes:
        function: per-dimension monotone preference function.
        k: number of results to maintain (>= 1).
        label: optional human-readable name for reports.
        qid: assigned by :class:`QueryTable` at registration; -1 before.
    """

    function: PreferenceFunction
    k: int
    label: str = ""
    qid: int = -1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")

    @property
    def dims(self) -> int:
        return self.function.dims

    def score(self, attrs) -> float:
        return self.function.score(attrs)

    def __repr__(self) -> str:
        name = self.label or f"q{self.qid}"
        return f"TopKQuery({name}, k={self.k}, f={self.function!r})"


@dataclass(eq=False)
class ConstrainedTopKQuery(TopKQuery):
    """Top-k over points inside a rectangular constraint region."""

    constraint: Rectangle = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.constraint is None:
            raise QueryError("constrained query requires a constraint region")
        if self.constraint.dims != self.function.dims:
            raise QueryError(
                f"constraint has {self.constraint.dims} dims, function "
                f"{self.function.dims}"
            )

    def admits(self, attrs) -> bool:
        return self.constraint.contains(attrs)

    def __repr__(self) -> str:
        name = self.label or f"q{self.qid}"
        return (
            f"ConstrainedTopKQuery({name}, k={self.k}, f={self.function!r}, "
            f"R={self.constraint.lower}..{self.constraint.upper})"
        )


@dataclass(eq=False)
class ThresholdQuery:
    """Monitor every valid point whose score exceeds ``threshold``."""

    function: PreferenceFunction
    threshold: float
    label: str = ""
    qid: int = -1

    @property
    def dims(self) -> int:
        return self.function.dims

    def score(self, attrs) -> float:
        return self.function.score(attrs)

    def __repr__(self) -> str:
        name = self.label or f"q{self.qid}"
        return f"ThresholdQuery({name}, t={self.threshold:g}, f={self.function!r})"


class QueryTable:
    """Registry of running queries keyed by qid (the paper's QT)."""

    def __init__(self) -> None:
        self._queries: Dict[int, object] = {}
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[object]:
        return iter(self._queries.values())

    def __contains__(self, qid: int) -> bool:
        return qid in self._queries

    def register(self, query) -> int:
        """Assign a fresh qid and store the query; return the qid."""
        if query.qid != -1 and query.qid in self._queries:
            raise QueryError(f"query already registered with qid {query.qid}")
        qid = next(self._ids)
        query.qid = qid
        self._queries[qid] = query
        return qid

    def unregister(self, qid: int):
        """Remove and return the query with ``qid``."""
        try:
            return self._queries.pop(qid)
        except KeyError:
            raise QueryError(f"unknown query id {qid}") from None

    def get(self, qid: int):
        try:
            return self._queries[qid]
        except KeyError:
            raise QueryError(f"unknown query id {qid}") from None
