"""Sliding-window semantics: count-based and time-based.

The paper (Section 1) defines two window flavours over the append-only
stream: a *count-based* window holds the N most recent tuples, a
*time-based* window holds every tuple that arrived within the last T
time units. Both evict strictly first-in-first-out (Section 4.1), so a
single FIFO list of valid records suffices and eviction is O(1) per
expired tuple.

A window object owns that FIFO list. The engine feeds arrivals through
:meth:`SlidingWindow.insert` and collects the expirations a cycle
produces through :meth:`SlidingWindow.evict`; the two sets are handed
to the monitoring algorithm as the paper's ``P_ins`` / ``P_del``.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

from repro.core.errors import WindowError
from repro.core.tuples import StreamRecord
from repro.structures.fifo import FifoList


class SlidingWindow(abc.ABC):
    """Base class: FIFO store of the currently valid records."""

    def __init__(self) -> None:
        self._records = FifoList()
        self._last_time: Optional[float] = None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[StreamRecord]:
        """Valid records, oldest first."""
        return iter(self._records)

    def observe(self, record: StreamRecord) -> None:
        """Validate stream order and advance the order clock without
        admitting the record.

        Used for dead-on-arrival drops: a record the engine refuses
        still *arrived*, so a misordered producer must keep failing
        loudly and later arrivals must still be ordered against it.
        """
        if self._last_time is not None and record.time < self._last_time:
            raise WindowError(
                f"out-of-order arrival: record {record.rid} at time "
                f"{record.time} after time {self._last_time}"
            )
        self._last_time = record.time

    def insert(self, record: StreamRecord) -> None:
        """Admit an arrival. Arrivals must be in non-decreasing time."""
        self.observe(record)
        self._records.append(record)

    def admits(self, record: StreamRecord, now: float) -> bool:
        """Whether ``record`` would still be valid at time ``now``.

        ``False`` marks a *dead-on-arrival* record: inserting it and
        immediately evicting at ``now`` would feed it to the algorithm
        as both an arrival and an expiration in the same cycle. The
        engine drops such records up front (see
        :meth:`repro.core.engine.StreamMonitor.process`). Count-based
        windows always admit — validity there depends on subsequent
        arrivals, not on the clock.
        """
        return True

    @abc.abstractmethod
    def evict(self, now: float) -> List[StreamRecord]:
        """Pop and return every record that expires at time ``now``."""

    def peek_oldest(self) -> Optional[StreamRecord]:
        return self._records.peekleft() if self._records else None


class CountBasedWindow(SlidingWindow):
    """The N most recent tuples are valid (paper's default, Section 8)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise WindowError(f"window capacity must be positive: {capacity}")
        super().__init__()
        self.capacity = capacity

    def evict(self, now: float) -> List[StreamRecord]:
        expired: List[StreamRecord] = []
        while len(self._records) > self.capacity:
            expired.append(self._records.popleft())
        return expired

    def __repr__(self) -> str:
        return f"CountBasedWindow(N={self.capacity})"


class TimeBasedWindow(SlidingWindow):
    """Tuples younger than ``duration`` time units are valid.

    A record with arrival time ``t`` is valid while ``now < t +
    duration`` and expires at ``now >= t + duration`` — so a window of
    duration T observed at integer timestamps holds exactly the tuples
    of the last T timestamps.
    """

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise WindowError(f"window duration must be positive: {duration}")
        super().__init__()
        self.duration = duration

    def evict(self, now: float) -> List[StreamRecord]:
        expired: List[StreamRecord] = []
        while self._records:
            oldest = self._records.peekleft()
            if oldest.time + self.duration <= now:
                expired.append(self._records.popleft())
            else:
                break
        return expired

    def admits(self, record: StreamRecord, now: float) -> bool:
        """A record already older than ``now - duration`` is dead on
        arrival: it would expire in the very cycle that inserts it."""
        return record.time + self.duration > now

    def __repr__(self) -> str:
        return f"TimeBasedWindow(T={self.duration})"
