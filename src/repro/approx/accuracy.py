"""The per-query accuracy contract of the approximate tier.

An :class:`Accuracy` attached to a query opts it into the sketch-backed
approximate maintenance path (``algorithm="approx"``): the engine may
report a top-k whose kth score is below the exact kth score, but every
report carries a machine-checkable certified ``bound`` such that

    exact_kth_score <= reported_kth_score * (1 + bound),   bound <= epsilon.

``delta`` is the confidence budget of the (ε,δ) contract: the observed
error may exceed ε with probability at most δ. The maintenance scheme
in :mod:`repro.approx.algorithm` is deterministic — its certified bound
*always* holds — so any ``delta`` in [0, 1) is honoured outright; the
field exists so the contract is stated in the standard sketch
vocabulary and survives wire round trips unchanged.

See ``docs/APPROX.md`` for the bound derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, slots=True)
class Accuracy:
    """An (ε,δ) accuracy contract for one approximate query.

    Args:
        epsilon: maximum relative rank-score error of any report.
        delta: probability budget for exceeding ``epsilon`` (the
            deterministic maintenance scheme never spends it).
    """

    epsilon: float
    delta: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon:
            raise ValueError(
                f"accuracy epsilon must be positive: {self.epsilon}"
            )
        if not 0.0 <= self.delta < 1.0:
            raise ValueError(
                f"accuracy delta must be in [0, 1): {self.delta}"
            )

    def as_dict(self) -> Dict[str, float]:
        """Wire-friendly view (repr-faithful floats, see protocol)."""
        return {"epsilon": self.epsilon, "delta": self.delta}

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "Accuracy":
        return cls(
            epsilon=float(payload["epsilon"]),
            delta=float(payload.get("delta", 0.01)),
        )
