"""The sketch-backed approximate monitoring algorithm.

:class:`ApproxTopKAlgorithm` extends TMA with a second, opt-in
maintenance tier for queries that carry an
:class:`~repro.approx.accuracy.Accuracy` contract. Queries *without* a
contract are handled by the inherited exact TMA machinery, bitwise
unchanged — approximate and exact queries coexist on one algorithm
instance, share the grid and each cycle's ingestion, and emit through
the same change-report pipeline. Changes of contracted queries are
annotated ``cause="approx"`` and carry the certified ``bound``.

Per contracted query the tier keeps a **buffer**: every in-window
record scoring at least the query's admission ``floor``, anchored by
the last relaxed sweep (:func:`repro.approx.traversal
.compute_top_k_relaxed`) together with a frozen certificate threshold
``g``. Between sweeps, maintenance is O(arrivals + expirations):

- arrivals scoring at least ``floor`` are admitted (one vector kernel
  call per query over the cycle's arrival block);
- expired buffer members are dropped;
- the report is the buffer's top k; its certified bound is
  ``max(0, g / s_k - 1)`` where ``s_k`` is the buffer's kth score —
  valid because every record outside the buffer scores below ``g``
  (invariant (I) of :mod:`repro.approx.traversal`);
- because every buffer member scores at least ``floor = g / (1 + ε)``,
  a full buffer's bound can never exceed ε; only when the buffer
  underfills (or a mutation invalidates it) does a fresh relaxed sweep
  re-anchor the certificate.

This is the approximate analogue of TMA's from-scratch recomputation
policy: instead of recomputing whenever a *result member* expires, the
tier recomputes only when the certificate decays — the slack band
absorbs result-member churn, which is where the throughput win comes
from. Refreshes are counted as ``approx_refreshes``, not
``recomputations``, so exact-tier statistics keep their meaning.

The grid's cell population is mirrored into a
:class:`~repro.approx.sketch.CellSketch` fed one columnar delta per
cycle — locally derived, or staged by a shard coordinator via
:meth:`stage_sketch_delta` (the wire-shipped delta is authoritative so
worker sketches are byte-identical to the coordinator's). The sketch
carries the per-cell occupancy summaries that size refresh work,
back the space accounting of :mod:`repro.analysis.memory`, and give
the sharded parity suite a transport-independent state to compare.

Everything on this path is deterministic: given the same stream and
query set, results, bounds, buffers, and sketch states are identical
across batch backends, shard counts, and transports.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterable, List, Optional, Set

from repro.algorithms.tma import TopKMonitoringAlgorithm
from repro.algorithms.topk_computation import query_region
from repro.approx.accuracy import Accuracy
from repro.approx.sketch import CellMapper, CellSketch, SketchDelta, cycle_delta
from repro.approx.traversal import (
    BufferEntry,
    certificate,
    certified_bound,
    compute_top_k_relaxed,
)
from repro.core.batch import ArrivalScorer
from repro.core.errors import QueryError
from repro.core.queries import TopKQuery
from repro.core.results import ResultEntry
from repro.core.tuples import StreamRecord


class _ApproxQueryState:
    """Per-query approximate state: contract, buffer, certificate."""

    __slots__ = (
        "query", "accuracy", "buffer", "rids", "g", "floor", "bound",
        "_report",
    )

    def __init__(self, query: TopKQuery, accuracy: Accuracy) -> None:
        self.query = query
        self.accuracy = accuracy
        #: ascending (score, rid, record); last k entries = the report.
        self.buffer: List[BufferEntry] = []
        self.rids: Set[int] = set()
        self.g = float("-inf")
        self.floor = float("-inf")
        self.bound = 0.0
        #: memoised report; None after any top-k-visible mutation.
        self._report: Optional[List[ResultEntry]] = None

    def invalidate(self) -> None:
        self._report = None

    def kth_score(self) -> Optional[float]:
        if len(self.buffer) < self.query.k:
            return None
        return self.buffer[-self.query.k][0]

    def result_entries(self) -> List[ResultEntry]:
        if self._report is None:
            self._report = [
                ResultEntry(score, record)
                for score, _, record in reversed(
                    self.buffer[-self.query.k:]
                )
            ]
        return list(self._report)


class ApproxTopKAlgorithm(TopKMonitoringAlgorithm):
    """TMA plus a sketch-backed (ε,δ)-contracted approximate tier."""

    name = "approx"
    #: the engine routes ``accuracy=`` contracts only to algorithms
    #: that declare support (see StreamMonitor.add_query).
    supports_accuracy = True

    def __init__(
        self,
        dims: int,
        cells_per_axis: int,
        eager_cleanup: bool = False,
        grouped: bool = False,
        sketch_epsilon: float = 0.25,
    ) -> None:
        super().__init__(
            dims, cells_per_axis, eager_cleanup=eager_cleanup, grouped=grouped
        )
        self.sketch = CellSketch(sketch_epsilon)
        self._mapper = CellMapper(dims, cells_per_axis)
        self._approx: Dict[int, _ApproxQueryState] = {}
        self._staged_delta: Optional[SketchDelta] = None

    # ------------------------------------------------------------------
    # Sketch plumbing
    # ------------------------------------------------------------------

    def bind_window(self, capacity: int) -> None:
        """Bind the sketch to a count window (engine calls this once)."""
        self.sketch.bind_window(capacity)

    def stage_sketch_delta(self, delta: Optional[SketchDelta]) -> None:
        """Stage a coordinator-shipped delta for the next cycle.

        A staged delta is authoritative: the next cycle applies it
        instead of deriving one locally, so sharded sketches match the
        coordinator's byte for byte regardless of transport.
        """
        self._staged_delta = delta

    def sketch_state(self) -> Dict[str, object]:
        """Canonical sketch snapshot (parity tests, introspection)."""
        return self.sketch.state()

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def register(self, query: TopKQuery) -> List[ResultEntry]:
        accuracy = getattr(query, "accuracy", None)
        if accuracy is None:
            return super().register(query)
        if not isinstance(query, TopKQuery):
            raise QueryError(
                "accuracy contracts apply to top-k queries only; "
                f"got {type(query).__name__}"
            )
        if query.dims != self.dims:
            raise self._unknown_dimensionality(query)
        if query_region(query) is not None:
            raise QueryError(
                "accuracy contracts require unconstrained top-k queries; "
                f"query {query.qid} has a constraint region"
            )
        state = _ApproxQueryState(query, accuracy)
        self._refresh(state)
        self._approx[query.qid] = state
        return state.result_entries()

    def register_many(
        self, queries: List[TopKQuery]
    ) -> Dict[int, List[ResultEntry]]:
        exact = [
            query
            for query in queries
            if getattr(query, "accuracy", None) is None
        ]
        results = super().register_many(exact) if exact else {}
        for query in queries:
            if getattr(query, "accuracy", None) is not None:
                results[query.qid] = self.register(query)
        return results

    def unregister(self, qid: int) -> None:
        if qid in self._approx:
            del self._approx[qid]
            return
        super().unregister(qid)

    def current_result(self, qid: int) -> List[ResultEntry]:
        state = self._approx.get(qid)
        if state is not None:
            return state.result_entries()
        return super().current_result(qid)

    def queries(self) -> Iterable[TopKQuery]:
        return list(super().queries()) + [
            state.query for state in self._approx.values()
        ]

    def update_query(
        self,
        qid: int,
        k: Optional[int] = None,
        function=None,
    ) -> List[ResultEntry]:
        state = self._approx.get(qid)
        if state is None:
            return super().update_query(qid, k=k, function=function)
        if k is None and function is None:
            return state.result_entries()
        if k is not None and k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        query = state.query
        old_k, old_function = query.k, query.function
        if k is not None:
            query.k = k
        if function is not None:
            query.function = function
        try:
            # Any mutation re-anchors the certificate: the buffer was
            # maintained under the old query's floor, which neither a
            # larger k nor a new function can reuse safely.
            self._refresh(state)
        except BaseException:
            query.k, query.function = old_k, old_function
            self._refresh(state)
            raise
        return state.result_entries()

    # ------------------------------------------------------------------
    # Cycle maintenance
    # ------------------------------------------------------------------

    def _apply_cycle(
        self,
        arrivals: List[StreamRecord],
        expirations: List[StreamRecord],
    ) -> None:
        delta = self._staged_delta
        self._staged_delta = None
        with self.tracer.span("sketch"):
            if delta is None:
                delta = cycle_delta(self._mapper, arrivals, expirations)
            self.counters.sketch_updates += self.sketch.apply_delta(delta)

        super()._apply_cycle(arrivals, expirations)
        if not self._approx:
            return

        expired = (
            {record.rid for record in expirations} if expirations else None
        )
        scorer = ArrivalScorer(arrivals) if arrivals else None
        for qid in sorted(self._approx):
            state = self._approx[qid]
            # Pre-cycle report for the change diff (a copy of the
            # memoised list — no entry construction on the fast path).
            before = state.result_entries()
            # Track whether the *report* (buffer's top k) can have
            # changed: churn confined below the kth entry keeps the
            # memoised report and its bound valid, so those queries
            # skip touch, settle, and the change-diff pipeline.
            changed = False
            if expired is not None and state.rids & expired:
                k = state.query.k
                gate = (
                    state.buffer[-k][:2]
                    if len(state.buffer) >= k
                    else None
                )
                kept: List[BufferEntry] = []
                for entry in state.buffer:
                    if entry[1] in expired:
                        if gate is None or entry[:2] >= gate:
                            changed = True
                    else:
                        kept.append(entry)
                state.buffer = kept
                state.rids.difference_update(expired)
            if scorer is not None:
                survivors, values = scorer.take_survivors(
                    state.query.function, state.floor
                )
                if len(values):
                    k = state.query.k
                    for index, value in zip(survivors, values):
                        record = arrivals[index]
                        entry = (value, record.rid, record)
                        if not changed and (
                            len(state.buffer) < k
                            or entry[:2] > state.buffer[-k][:2]
                        ):
                            changed = True
                        insort(state.buffer, entry)
                        state.rids.add(record.rid)
                        self.counters.approx_admissions += 1
            if changed:
                if qid not in self._snapshots:
                    self._snapshots[qid] = before
                state.invalidate()
                self._settle(qid, state)

    def _settle(self, qid: int, state: _ApproxQueryState) -> None:
        """Re-certify a state after the cycle's buffer mutations.

        Cheap path: the buffer's kth score still supports the frozen
        certificate (``s_k * (1 + ε) >= g``), so only the reported
        bound is recomputed. Otherwise the certificate has decayed —
        or the buffer underfilled — and a fresh relaxed sweep
        re-anchors it.
        """
        kth = state.kth_score()
        epsilon = state.accuracy.epsilon
        if kth is not None and state.floor != float("-inf"):
            if kth > 0.0:
                decayed = kth * (1.0 + epsilon) < state.g
            else:
                # Non-positive kth: only an exact certificate (g == s_k
                # from the degraded-to-exact sweep) is representable.
                decayed = state.g > kth
            if not decayed:
                state.bound = certified_bound(kth, state.g)
                return
        elif kth is None and state.floor == float("-inf"):
            # Vacuously certified: the buffer holds the whole window.
            state.bound = 0.0
            return
        self._touch(qid)
        self._refresh(state)

    def _refresh(self, state: _ApproxQueryState) -> None:
        # Pre-size the sweep pool from the sketch's occupancy estimate
        # (an upper bound on what a sweep can examine); the estimate's
        # quality is published as gauges below, never consulted for
        # correctness — results are identical with or without it.
        expected = self.sketch.estimated_population()
        outcome = compute_top_k_relaxed(
            self.grid,
            state.query.function,
            state.query.k,
            state.accuracy.epsilon,
            self.counters,
            expected_points=expected if expected > 0 else None,
        )
        if self.metrics is not None:
            actual = self.grid.point_count()
            self.metrics.gauge(
                "repro_approx_sketch_estimated_points",
                "cell-sketch population estimate at the last refresh "
                "sweep (used to pre-size the sweep pool)",
            ).set(float(expected))
            self.metrics.gauge(
                "repro_approx_sketch_actual_points",
                "true grid population at the last refresh sweep",
            ).set(float(actual))
            self.metrics.gauge(
                "repro_approx_sketch_estimate_error",
                "relative error of the sketch population estimate at "
                "the last refresh sweep",
            ).set(
                abs(expected - actual) / actual if actual else 0.0
            )
            self.metrics.gauge(
                "repro_approx_refresh_pooled_points",
                "records the last refresh sweep examined and pooled",
            ).set(float(outcome.pooled))
        state.buffer = outcome.buffer
        state.rids = {rid for _, rid, _ in outcome.buffer}
        state.g = outcome.g
        state.floor = outcome.floor
        state.bound = outcome.bound
        state.invalidate()

    # ------------------------------------------------------------------
    # Change annotations / introspection
    # ------------------------------------------------------------------

    def _change_annotations(self, qid: int):
        state = self._approx.get(qid)
        if state is None:
            return super()._change_annotations(qid)
        return "approx", state.bound

    def result_bounds(self) -> Dict[int, float]:
        """Current certified bound per contracted query."""
        return {qid: state.bound for qid, state in self._approx.items()}

    def accuracies(self) -> Dict[int, Accuracy]:
        """The accuracy contract per contracted query."""
        return {
            qid: state.accuracy for qid, state in self._approx.items()
        }

    def result_state_sizes(self) -> Dict[int, int]:
        sizes = super().result_state_sizes()
        for qid, state in self._approx.items():
            sizes[qid] = len(state.buffer)
        return sizes
