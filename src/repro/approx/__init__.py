"""Sketch-backed approximate top-k monitoring with certified bounds.

Public surface:

- :class:`~repro.approx.accuracy.Accuracy` — the per-query (ε,δ)
  contract passed to ``StreamMonitor.add_query(..., accuracy=...)``.
- :class:`~repro.approx.algorithm.ApproxTopKAlgorithm` — TMA plus the
  opt-in approximate tier (registry name ``"approx"``).
- :mod:`~repro.approx.sketch` — the sliding-window cell-population
  sketch and its columnar delta format.
- :func:`~repro.approx.traversal.compute_top_k_relaxed` — the relaxed
  Figure-6 sweep that anchors each certificate.

See ``docs/APPROX.md`` for the design and the bound derivation.
"""

from repro.approx.accuracy import Accuracy
from repro.approx.algorithm import ApproxTopKAlgorithm
from repro.approx.sketch import CellMapper, CellSketch, cycle_delta
from repro.approx.traversal import ApproxOutcome, compute_top_k_relaxed

__all__ = [
    "Accuracy",
    "ApproxOutcome",
    "ApproxTopKAlgorithm",
    "CellMapper",
    "CellSketch",
    "compute_top_k_relaxed",
    "cycle_delta",
]
