"""Sliding-window cell-population sketch (exponential histograms).

The approximate tier summarises the grid's cell population with one
ECM-style structure: per grid cell, an exponential histogram (Datar et
al.) over that cell's arrival stream, expired against the *global*
arrival sequence so each histogram estimates the cell's in-window
record count within a relative error ``epsilon``. Because the key
space (flat cell ids) is exact — there is no hash dimension to
collide — the ECM sketch degenerates to a dictionary of exponential
histograms, which keeps every estimate one-sided and deterministic.

The sketch is *delta-driven*: each cycle is reduced to one columnar
:func:`cycle_delta` (sorted flat cell ids + per-cell arrival counts,
plus per-cell drop counts for windowless stream models) and applied
with :meth:`CellSketch.apply_delta`. The same delta format ships to
remote shards over pipe and TCP channels (see
:mod:`repro.transport.codec`), so a worker's sketch is byte-identical
to the coordinator's whether it derives the delta locally or receives
it on the wire — the sharded sketch-parity suite pins this.

Everything here is integer arithmetic, so both batch backends agree
bit for bit by construction; the DET103 analyzer rule still covers
these modules so future reductions stay loop-shaped.

Two modes:

- **window mode** (after :meth:`CellSketch.bind_window`): exponential
  histograms against a count-based window of ``capacity`` global
  arrivals. Expirations ride the arrival clock — drop columns are
  ignored. All arrivals of one cycle share the cycle's closing tick,
  which can only delay expiry by less than one cycle (a conservative,
  deterministic over-estimate on top of the EH bound).
- **exact mode** (no window bound): plain per-cell counters, adds and
  drops both applied. This serves time-based windows and the
  explicit-deletion update model, where no arrival-count window
  exists to expire against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import batch

#: columnar cycle delta: tick advance + sorted add/drop cell columns.
SketchDelta = Dict[str, object]


class CellMapper:
    """Maps attribute vectors to flat grid cell ids.

    Reproduces :meth:`repro.grid.grid.Grid.coords_of` (clamped
    ``int(value * cells_per_axis)`` per axis) plus the grid's
    row-major flat index — without materialising a grid. The sharded
    coordinator uses one of these to derive sketch deltas for shipping;
    workers derive the same ids through their real grids, and the two
    agree by construction.
    """

    __slots__ = ("dims", "cells_per_axis")

    def __init__(self, dims: int, cells_per_axis: int) -> None:
        self.dims = dims
        self.cells_per_axis = cells_per_axis

    def flat_of(self, attrs: Sequence[float]) -> int:
        g = self.cells_per_axis
        top = g - 1
        flat = 0
        for value in attrs:
            index = int(value * g)
            if index < 0:
                index = 0
            elif index > top:
                index = top
            flat = flat * g + index
        return flat

    def columns_of(self, records: Sequence) -> Tuple[List[int], List[int]]:
        """Sorted ``(cells, counts)`` columns of one record batch.

        The columnar reduction both delta directions share. The NumPy
        path computes the same clamped truncation as :meth:`flat_of`
        (``int(value * g)`` truncates toward zero exactly like
        ``astype(int64)``) in integer arithmetic, so both batch
        backends produce identical columns — the DET103 discipline.
        """
        if not records:
            return [], []
        if batch.np is not None:
            np = batch.np
            g = self.cells_per_axis
            matrix = np.asarray(
                [record.attrs for record in records], dtype=np.float64
            )
            indices = np.clip(
                (matrix * g).astype(np.int64), 0, g - 1
            )
            # Horner accumulation column by column — the same integer
            # operation order as flat_of, one axis at a time.
            flats = indices[:, 0]
            for axis in range(1, self.dims):
                flats = flats * g + indices[:, axis]
            cells, counts = np.unique(flats, return_counts=True)
            return cells.tolist(), counts.tolist()
        tally: Dict[int, int] = {}
        for record in records:
            flat = self.flat_of(record.attrs)
            tally[flat] = tally.get(flat, 0) + 1
        items = sorted(tally.items())
        return [cell for cell, _ in items], [count for _, count in items]


def cycle_delta(
    mapper: CellMapper,
    arrivals: Sequence,
    expirations: Sequence,
) -> Optional[SketchDelta]:
    """Reduce one cycle to the canonical columnar sketch delta.

    Returns ``None`` for an empty cycle. Cell columns are sorted by
    flat id, so the delta — and therefore every sketch state derived
    from a given stream — is deterministic.
    """
    if not arrivals and not expirations:
        return None
    add_cells, add_counts = mapper.columns_of(arrivals)
    drop_cells, drop_counts = mapper.columns_of(expirations)
    return {
        "tick": len(arrivals),
        "add_cells": add_cells,
        "add_counts": add_counts,
        "drop_cells": drop_cells,
        "drop_counts": drop_counts,
    }


class ExponentialHistogram:
    """Count of 1-bits in a sliding count window, within ``1/(2*cap)``.

    Buckets are ``[timestamp, size]`` pairs, oldest first, sizes
    non-increasing powers of two toward the newest end. At most
    ``cap`` buckets of each size are kept; on overflow the two oldest
    of that size merge (keeping the newer timestamp), which is what
    bounds both space — O(cap · log(window)) buckets — and the
    estimate's relative error: only the oldest bucket can straddle the
    window boundary, and its size is at most ``2 · eps · count``.
    """

    __slots__ = ("cap", "buckets", "total")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.buckets: List[List[int]] = []
        self.total = 0

    def insert(self, timestamp: int, count: int = 1) -> None:
        """Record ``count`` unit arrivals stamped ``timestamp``.

        The whole batch is appended first and canonicalised with one
        cascade — merging pairs-of-oldest level by level until every
        size's run is back within ``cap``. One batched cascade instead
        of ``count`` unit ones changes which of the many valid EH
        bucket lists results, but the outcome is a pure function of
        the applied deltas (what shard parity needs) and keeps the
        cap-per-size invariant (what the error bound needs).
        """
        buckets = self.buckets
        for _ in range(count):
            buckets.append([timestamp, 1])
        self.total += count
        self._cascade()

    def _cascade(self) -> None:
        buckets = self.buckets
        cap = self.cap
        size = 1
        end = len(buckets)  # exclusive end of the current size's run
        while True:
            start = end
            while start > 0 and buckets[start - 1][1] == size:
                start -= 1
            run = end - start
            merges = 0
            while run > cap:
                # Merge the two oldest buckets of this size; the
                # merged bucket keeps the newer timestamp (standard
                # EH rule) and joins the next size's run.
                newer = buckets[start + 1]
                buckets[start:start + 2] = [[newer[0], size + size]]
                start += 1
                run -= 2
                merges += 1
            if merges == 0:
                return
            size += size
            end = start

    def expire(self, horizon: int) -> None:
        """Drop buckets wholly outside the window (timestamp <= horizon)."""
        dropped = 0
        while self.buckets and self.buckets[0][0] <= horizon:
            dropped += self.buckets.pop(0)[1]
        self.total -= dropped

    def estimate(self) -> int:
        """Window count estimate: total minus half the oldest bucket."""
        if not self.buckets:
            return 0
        return self.total - self.buckets[0][1] // 2


class CellSketch:
    """Per-cell sliding-window population summaries for one grid.

    One :class:`ExponentialHistogram` per non-empty flat cell id in
    window mode; plain integer counters in exact mode (see module
    docstring). Fed exclusively through :meth:`apply_delta`, which is
    also the unit that ships to shards.
    """

    __slots__ = ("epsilon", "window", "tick", "_cells", "_cap")

    def __init__(self, epsilon: float = 0.25) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(
                f"sketch epsilon must be in (0, 1]: {epsilon}"
            )
        self.epsilon = epsilon
        #: arrival-count window capacity; None = exact mode.
        self.window: Optional[int] = None
        #: global arrival counter (the EH timestamp clock).
        self.tick = 0
        self._cells: Dict[int, object] = {}
        # ceil(1/(2*eps)) + 1 buckets per size bounds the straddling
        # bucket at 2*eps*count, i.e. estimate error <= eps relative.
        self._cap = -(-1 // (2.0 * epsilon)).__trunc__() + 1
        if self._cap < 2:
            self._cap = 2

    def bind_window(self, capacity: int) -> None:
        """Switch to window mode before any data has been applied."""
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1: {capacity}")
        if self.tick or self._cells:
            raise ValueError(
                "bind_window must run before the sketch sees data"
            )
        self.window = capacity

    def apply_delta(self, delta: Optional[SketchDelta]) -> int:
        """Apply one columnar cycle delta; return cells updated."""
        if not delta:
            return 0
        self.tick += int(delta["tick"])
        updated = 0
        if self.window is None:
            counts = self._cells
            for cell, count in zip(delta["add_cells"], delta["add_counts"]):
                counts[cell] = counts.get(cell, 0) + count
                updated += 1
            for cell, count in zip(
                delta["drop_cells"], delta["drop_counts"]
            ):
                remaining = counts.get(cell, 0) - count
                if remaining > 0:
                    counts[cell] = remaining
                else:
                    counts.pop(cell, None)
                updated += 1
            return updated
        horizon = self.tick - self.window
        for cell, count in zip(delta["add_cells"], delta["add_counts"]):
            histogram = self._cells.get(cell)
            if histogram is None:
                histogram = ExponentialHistogram(self._cap)
                self._cells[cell] = histogram
            histogram.expire(horizon)
            histogram.insert(self.tick, count)
            updated += 1
        return updated

    def estimate(self, cell: int) -> int:
        """Estimated in-window record count of one flat cell id."""
        entry = self._cells.get(cell)
        if entry is None:
            return 0
        if self.window is None:
            return entry
        entry.expire(self.tick - self.window)
        if not entry.buckets:
            del self._cells[cell]
            return 0
        return entry.estimate()

    def estimated_population(self) -> int:
        """Estimated total in-window records across all cells."""
        return sum(
            self.estimate(cell) for cell in sorted(self._cells)
        )

    def tracked_cells(self) -> int:
        return len(self._cells)

    def bucket_count(self) -> int:
        """Live EH buckets across cells (0 in exact mode)."""
        if self.window is None:
            return 0
        total = 0
        for cell in sorted(self._cells):
            entry = self._cells.get(cell)
            if entry is not None:
                total += len(entry.buckets)
        return total

    def space_words(self) -> int:
        """Machine-independent space: words of sketch state.

        Two words per tracked cell (key + slot) plus, in window mode,
        two words per live bucket (timestamp + size) — the C-style
        accounting :mod:`repro.analysis.memory` prices structures in.
        """
        return 2 * len(self._cells) + 2 * self.bucket_count()

    def state(self) -> Dict[str, object]:
        """Canonical JSON-able snapshot (sharded parity tests).

        Expires lazily first, so two sketches fed identical deltas
        report identical states regardless of read patterns.
        """
        if self.window is None:
            cells: List[List[object]] = [
                [cell, self._cells[cell]] for cell in sorted(self._cells)
            ]
        else:
            horizon = self.tick - self.window
            cells = []
            for cell in sorted(self._cells):
                histogram = self._cells[cell]
                histogram.expire(horizon)
                if histogram.buckets:
                    cells.append(
                        [cell, [list(b) for b in histogram.buckets]]
                    )
                else:
                    del self._cells[cell]
        return {
            "mode": "exact" if self.window is None else "window",
            "tick": self.tick,
            "window": self.window,
            "cells": cells,
        }
