"""Relaxed top-k computation with a certified error bound.

:func:`compute_top_k_relaxed` is the approximate tier's analogue of
:func:`repro.grid.traversal.compute_top_k` (the paper's Figure-6
module). It runs the same best-first cell traversal — same heap, same
keys, same batched per-cell scoring — but with a *relaxed termination
gate*: once k candidates exist with kth score ``s_k > 0``, the sweep
stops as soon as the best remaining heap key drops below
``g = s_k * (1 + ANCHOR_SHARE * epsilon)`` instead of below ``s_k``.
Cells inside the slack band are skipped, and — more importantly — the
certificate anchored at ``g`` keeps certifying reports across many
subsequent cycles without any traversal at all.

**The certificate.** Let ``g`` be as above (or ``g = s_k`` when
``s_k <= 0`` — the gate falls back to the exact rule there, so
negative-score workloads silently degrade to exact). At termination
the best remaining heap key is below ``g``; by the grid's
monotonicity, *every* record not examined by the sweep lives in a cell
of maxscore below ``g``, hence scores below ``g``. The sweep also
keeps a **buffer** of every examined record scoring at least
``floor = g / (1 + epsilon)``. Therefore:

    every in-window record absent from the buffer scores below g.  (I)

If the true kth record were missing from the buffer, the true kth
score would be below ``g``; if it is present, the buffer's kth score
*is* the true kth. Either way ``exact_s_k <= max(s_k, g) =
s_k * (1 + bound)`` with ``bound = max(0, g / s_k - 1)`` — and since
the buffer's kth score never falls below ``floor`` while the buffer
stays full, ``bound <= epsilon`` is the machine-checkable guarantee
every approximate report carries.

Invariant (I) is what :class:`repro.approx.algorithm.ApproxTopKAlgorithm`
maintains incrementally between refreshes: arrivals scoring at least
``floor`` enter the buffer (``floor <= g``, so skipped arrivals keep
(I)); expirations leave it. Because every member scores at least
``floor``, a full buffer's certificate cannot decay past ε — a fresh
relaxed sweep re-anchors only when the buffer underfills (fewer than
k members survive). See ``docs/APPROX.md`` for the full derivation.

The traversal is deterministic and uses the scoring kernels of
:mod:`repro.core.batch`, so results are bitwise identical across batch
backends and shard layouts — the parity suites assert equality of
entries, bounds, and buffers, not just bound compliance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import batch
from repro.core.results import ResultEntry
from repro.core.scoring import LinearFunction, PreferenceFunction
from repro.core.stats import NULL_COUNTERS, OpCounters
from repro.grid.grid import Grid
from repro.grid.traversal import (
    _has_constant_maxscore_decrements,
    _linear_maxscore_fn,
    start_coords,
)

#: buffer entries are canonical (score, rid, record) triples.
BufferEntry = Tuple[float, int, object]


@dataclass(slots=True)
class ApproxOutcome:
    """What one relaxed sweep produced.

    Attributes:
        entries: up to k results, best-first in canonical order.
        buffer: every examined record scoring >= ``floor``, ascending
            by (score, rid) — the state the incremental maintenance
            path admits into and expires from.
        g: the frozen certificate threshold (see module docstring).
        floor: the buffer admission floor ``s_k / (1 + epsilon)``.
        bound: certified relative error of the report (<= epsilon).
        pooled: records the sweep examined and pooled — what an
            ``expected_points`` pre-size estimate is judged against.
    """

    entries: List[ResultEntry] = field(default_factory=list)
    buffer: List[BufferEntry] = field(default_factory=list)
    g: float = float("-inf")
    floor: float = float("-inf")
    bound: float = 0.0
    pooled: int = 0


#: share of the ε budget spent on the sweep's relaxed stop gate; the
#: rest becomes the buffer's decay band. A small share keeps anchors
#: tight (reported bounds ≈ ε/4) and buffers deep, so certificates
#: survive many cycles of result churn before a refresh — refresh
#: frequency, not sweep depth, dominates the tier's cycle cost.
ANCHOR_SHARE = 0.25


def certificate(kth_score: float, epsilon: float) -> Tuple[float, float]:
    """The (g, floor) pair anchored at ``kth_score``.

    The ε budget is split: the certificate threshold sits at
    ``g = s_k * (1 + ANCHOR_SHARE * ε)`` (the sweep's stop gate), and
    the admission floor at ``g / (1 + ε)`` — the lowest kth score the
    frozen ``g`` still certifies within ε. Every buffer member scores
    at least ``floor``, so a full buffer *cannot* decay past its
    contract; only underfilling (the buffer dropping below k members)
    forces a re-anchoring sweep. Positive kth scores get the relaxed
    band; non-positive ones collapse it (``g = floor = kth_score``) so
    the scheme degrades to exact instead of certifying against a sign
    flip.
    """
    if kth_score > 0.0:
        g = kth_score * (1.0 + ANCHOR_SHARE * epsilon)
        return g, g / (1.0 + epsilon)
    return kth_score, kth_score


def certified_bound(kth_score: float, g: float) -> float:
    """Certified relative error of a report with kth score ``kth_score``.

    The guarantee is ``exact_kth <= kth_score * (1 + bound)``; it
    follows from invariant (I) in the module docstring whenever ``g``
    is the certificate the buffer was maintained under.
    """
    if kth_score > 0.0 and g > kth_score:
        return g / kth_score - 1.0
    return 0.0


def compute_top_k_relaxed(
    grid: Grid,
    function: PreferenceFunction,
    k: int,
    epsilon: float,
    counters: Optional[OpCounters] = None,
    expected_points: Optional[int] = None,
) -> ApproxOutcome:
    """One relaxed best-first sweep (unconstrained queries only).

    Mirrors :func:`repro.grid.traversal.compute_top_k`'s plain-scan
    path — same start cell, same heap keys, same batched cell scoring
    — with two changes: the termination gate is ``g`` instead of the
    kth score, and every examined record down to the running admission
    floor is retained in the returned buffer.

    When the grid holds fewer than k eligible records the sweep runs
    to exhaustion, the buffer holds *every* valid record, and the
    certificate is vacuous (``g = floor = -inf``, ``bound = 0``) — the
    caller keeps admitting every arrival until a full refresh anchors
    a real certificate.

    ``expected_points`` pre-sizes the examined-record pool (the approx
    tier feeds the cell sketch's occupancy estimate here): slots are
    filled in place and truncated after the sweep, so an accurate
    estimate removes the pool's incremental growth reallocations.
    Results are identical with or without the hint.
    """
    if counters is None:
        counters = NULL_COUNTERS
    counters.topk_computations += 1
    counters.approx_refreshes += 1

    candidates: List[BufferEntry] = []
    pool: List[BufferEntry] = []
    pool_used = 0
    if expected_points is not None and expected_points > 0:
        pool = [(0.0, -1, None)] * int(expected_points)

    if type(function) is LinearFunction and _has_constant_maxscore_decrements(
        grid, function
    ):
        cell_maxscore = _linear_maxscore_fn(grid, function)
    else:
        cell_maxscore = lambda coords: grid.maxscore(coords, function)  # noqa: E731

    heap: List[Tuple[float, int, Tuple[int, ...]]] = []
    seq = 0
    enheaped = set()

    def push(coords: Tuple[int, ...]) -> None:
        nonlocal seq
        if coords in enheaped:
            return
        enheaped.add(coords)
        seq += 1
        heapq.heappush(heap, (-cell_maxscore(coords), seq, coords))
        counters.cells_enheaped += 1

    push(start_coords(grid, function, None))

    while heap:
        best_key = -heap[0][0]
        if len(candidates) >= k:
            stop_gate, pool_gate = certificate(candidates[0][0], epsilon)
            # Relaxed termination: cells inside the (s_k, g] band are
            # skipped — the certificate pays for them.
            if best_key < stop_gate:
                break
        else:
            pool_gate = float("-inf")
        _, _, coords = heapq.heappop(heap)
        counters.cells_processed += 1

        cell = grid.peek_cell(coords)
        if cell is not None and cell.points:
            records, scores = cell.scored_columns(function)
            counters.points_scored += len(records)
            if len(candidates) >= k:
                # One vector prefilter against the *running* floor: a
                # record below the current floor can never reach the
                # final one (the kth score only rises).
                survivors, values = batch.take_at_least(scores, pool_gate)
            else:
                survivors = range(len(records))
                values = batch.to_list(scores)
            for index, value in zip(survivors, values):
                record = records[index]
                entry = (value, record.rid, record)
                if pool_used < len(pool):
                    pool[pool_used] = entry
                else:
                    pool.append(entry)
                pool_used += 1
                if len(candidates) < k:
                    heapq.heappush(candidates, entry)
                elif entry[:2] > candidates[0][:2]:
                    heapq.heapreplace(candidates, entry)

        for neighbour in grid.steps_toward_worse(coords, function):
            push(neighbour)

    del pool[pool_used:]  # drop unfilled pre-sized slots

    if len(candidates) >= k:
        kth_score = candidates[0][0]
        g, floor = certificate(kth_score, epsilon)
        buffer = sorted(
            (entry for entry in pool if entry[0] >= floor),
            key=lambda item: item[:2],
        )
        bound = certified_bound(kth_score, g)
    else:
        # Underfull: keep everything, certify nothing (exact answer).
        g = floor = float("-inf")
        buffer = sorted(pool, key=lambda item: item[:2])
        bound = 0.0

    entries = [
        ResultEntry(score, record)
        for score, _, record in sorted(
            candidates, key=lambda item: item[:2], reverse=True
        )
    ]
    return ApproxOutcome(
        entries=entries,
        buffer=buffer,
        g=g,
        floor=floor,
        bound=bound,
        pooled=pool_used,
    )
