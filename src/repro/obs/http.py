"""Stdlib HTTP exposition for the metrics registry and cycle traces.

One daemon thread running :class:`http.server.ThreadingHTTPServer`
serves:

- ``GET /metrics`` — Prometheus text exposition format
  (``Content-Type: text/plain; version=0.0.4; charset=utf-8``);
- ``GET /trace`` — the tracer's ring buffer of recent cycle traces
  plus cumulative phase totals, as JSON (``?n=K`` limits to the last
  K traces);
- ``GET /healthz`` — liveness probe, ``ok``.

The handler only *reads* instruments (snapshot semantics under the
GIL), so no lock is shared with the engine hot path. Bind with
``port=0`` to let the OS pick — the bound port is on
:attr:`MetricsHTTPServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER

__all__ = ["MetricsHTTPServer", "PROMETHEUS_CONTENT_TYPE"]

#: the exposition content type Prometheus scrapers expect.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # set per-server via type() subclassing in MetricsHTTPServer
    registry: MetricsRegistry
    tracer = NULL_TRACER

    # quiet: scrape traffic must not spam stderr
    def log_message(self, format: str, *args: object) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            body = self.registry.to_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif parsed.path == "/trace":
            query = parse_qs(parsed.query)
            limit: Optional[int] = None
            if "n" in query:
                try:
                    limit = max(0, int(query["n"][0]))
                except ValueError:
                    self._reply(
                        400, "text/plain", b"query parameter n must be an int"
                    )
                    return
            payload = {
                "enabled": bool(self.tracer.enabled),
                "cycles": self.tracer.cycles,
                "slow_cycles": self.tracer.slow_cycles,
                "phase_totals": self.tracer.phase_totals(),
                "traces": self.tracer.last_traces(limit),
            }
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._reply(200, "application/json", body)
        elif parsed.path == "/healthz":
            self._reply(200, "text/plain", b"ok\n")
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class MetricsHTTPServer:
    """Background scrape endpoint for one registry (+ optional tracer).

    ``start()`` binds and spawns the serving thread; ``stop()`` shuts
    the listener down and joins. Both are idempotent.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer=NULL_TRACER,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._tracer = tracer
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (0 before :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._host

    def start(self) -> "MetricsHTTPServer":
        if self._server is not None:
            return self
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"registry": self._registry, "tracer": self._tracer},
        )
        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-metrics-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    close = stop

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
