"""repro.obs — unified metrics, phase tracing, and telemetry exposition.

The observability layer threaded through engine, shards, and serving
(docs/OBSERVABILITY.md):

- :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram``
  instruments in a :class:`~repro.obs.metrics.MetricsRegistry` with
  explicit cross-shard ``merge()`` and a collect-time ``OpCounters``
  adapter;
- :mod:`repro.obs.trace` — per-cycle phase spans
  (``with tracer.span("traversal")``), ring-buffered traces, and a
  slow-cycle JSONL policy, with a :data:`~repro.obs.trace.NULL_TRACER`
  null object when disabled;
- :mod:`repro.obs.http` — a stdlib HTTP thread serving Prometheus
  text format on ``/metrics`` and trace JSON on ``/trace``.
"""

from repro.obs.http import PROMETHEUS_CONTENT_TYPE, MetricsHTTPServer
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    OP_COUNTER_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    op_counter_names,
    publish_op_counters,
)
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    NULL_TRACER,
    PHASE_NAMES,
    CycleTracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHTTPServer",
    "CycleTracer",
    "NULL_TRACER",
    "PHASE_NAMES",
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_RING_SIZE",
    "OP_COUNTER_PREFIX",
    "publish_op_counters",
    "op_counter_names",
]
