"""Per-cycle phase spans with a near-zero disabled path.

A :class:`CycleTracer` slices each monitoring cycle into named phase
spans — ``with tracer.span("traversal"): ...`` — recording wall time
(``time.perf_counter``) and CPU time (``time.process_time``) per
phase. Traces accumulate three ways:

- a ring buffer of the last N completed cycle traces
  (:meth:`CycleTracer.last_traces`), each a plain dict;
- cumulative per-phase totals (:meth:`CycleTracer.phase_totals`),
  optionally mirrored into registry histograms
  (``repro_phase_<name>_seconds``) so shard workers can ship them and
  Prometheus can scrape them;
- a slow-cycle policy: any cycle whose wall time exceeds
  ``slow_cycle_seconds`` is appended as one JSON line to
  ``slow_cycle_path`` (JSONL), so pathological cycles survive the ring
  buffer.

When tracing is off the engine holds :data:`NULL_TRACER` instead — the
same null-object pattern as :data:`~repro.core.stats.NULL_COUNTERS`.
Every method is a no-op and ``span()`` returns one shared do-nothing
context manager, so call sites stay unconditional at per-*cycle*
granularity. Per-*record* hot loops must still gate on
``tracer.enabled`` before calling any clock — analyzer rule OBS401
(:mod:`repro.analysis.check.rules.obs`) enforces exactly that.

Span phase names used across the engine (docs/OBSERVABILITY.md has
the catalogue): ``ingest``, ``traversal``, ``skyband``, ``sketch``,
``encode``, ``shard_rpc``, ``dispatch``, ``delivery``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = [
    "CycleTracer",
    "NULL_TRACER",
    "PHASE_NAMES",
    "DEFAULT_RING_SIZE",
]

#: the canonical span names the engine emits (see module docstring).
PHASE_NAMES = (
    "ingest",
    "traversal",
    "skyband",
    "sketch",
    "encode",
    "shard_rpc",
    "dispatch",
    "delivery",
)

#: default ring-buffer capacity for completed cycle traces.
DEFAULT_RING_SIZE = 64

#: histogram buckets for per-phase wall time, in seconds.
PHASE_BUCKETS = (
    0.00001,
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
)


class _Span:
    """One active phase measurement. Re-raised exceptions pass
    through; the span still records."""

    __slots__ = ("_tracer", "name", "_wall0", "_cpu0")

    def __init__(self, tracer: "CycleTracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_Span":
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._tracer._record(self.name, wall, cpu)


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class CycleTracer:
    """Collects phase spans for one cycle at a time.

    Single-writer like the metrics instruments: only the engine thread
    (or a worker's serve loop) drives ``begin_cycle``/``span``/
    ``end_cycle``. Readers take :meth:`last_traces` snapshots, which
    copy under the GIL.
    """

    enabled = True

    def __init__(
        self,
        registry=None,
        ring_size: int = DEFAULT_RING_SIZE,
        slow_cycle_seconds: Optional[float] = None,
        slow_cycle_path: Optional[str] = None,
    ) -> None:
        self._registry = registry
        self._ring: Deque[Dict[str, object]] = deque(maxlen=ring_size)
        self.slow_cycle_seconds = slow_cycle_seconds
        self.slow_cycle_path = slow_cycle_path
        self.slow_cycles = 0
        self.cycles = 0
        self._phases: Dict[str, List[float]] = {}
        self._totals: Dict[str, List[float]] = {}
        self._cycle_open = False
        self._cycle_wall0 = 0.0
        self._cycle_meta: Dict[str, object] = {}
        self._histograms: Dict[str, object] = {}

    # -- cycle lifecycle ----------------------------------------------

    def begin_cycle(self, **meta: object) -> None:
        """Open a cycle trace; ``meta`` (cycle index, arrival count,
        ...) is stored on the finished trace verbatim."""
        self._phases = {}
        self._cycle_meta = dict(meta)
        self._cycle_open = True
        self._cycle_wall0 = time.perf_counter()

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def _record(self, name: str, wall: float, cpu: float) -> None:
        slot = self._phases.get(name)
        if slot is None:
            self._phases[name] = [wall, cpu]
        else:
            slot[0] += wall
            slot[1] += cpu
        total = self._totals.get(name)
        if total is None:
            self._totals[name] = [wall, cpu, 1.0]
        else:
            total[0] += wall
            total[1] += cpu
            total[2] += 1.0
        if self._registry is not None:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._registry.histogram(
                    f"repro_phase_{name}_seconds",
                    f"wall seconds spent in the {name} phase per span",
                    buckets=PHASE_BUCKETS,
                )
                self._histograms[name] = histogram
            histogram.observe(wall)

    def end_cycle(self, **meta: object) -> Optional[Dict[str, object]]:
        """Close the open cycle trace and append it to the ring.
        Returns the trace dict (or None when no cycle was open)."""
        if not self._cycle_open:
            return None
        wall = time.perf_counter() - self._cycle_wall0
        self._cycle_open = False
        trace: Dict[str, object] = dict(self._cycle_meta)
        trace.update(meta)
        trace["cycle"] = self.cycles
        trace["wall_seconds"] = wall
        trace["phases"] = {
            name: {"wall_seconds": slot[0], "cpu_seconds": slot[1]}
            for name, slot in sorted(self._phases.items())
        }
        self.cycles += 1
        self._ring.append(trace)
        threshold = self.slow_cycle_seconds
        if threshold is not None and wall > threshold:
            self.slow_cycles += 1
            self._dump_slow(trace)
        return trace

    def _dump_slow(self, trace: Dict[str, object]) -> None:
        if not self.slow_cycle_path:
            return
        try:
            with open(self.slow_cycle_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(trace, sort_keys=True) + "\n")
        except OSError:
            # Telemetry must never take the engine down; a full disk
            # or revoked path degrades to counting only.
            pass

    # -- read side ----------------------------------------------------

    def last_traces(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent completed cycle traces, oldest first."""
        traces = list(self._ring)
        if n is not None:
            traces = traces[-n:]
        return traces

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-phase totals across all traced cycles."""
        return {
            name: {
                "wall_seconds": total[0],
                "cpu_seconds": total[1],
                "spans": int(total[2]),
            }
            for name, total in sorted(self._totals.items())
        }


class _NullTracer:
    """Disabled tracer: every call vanishes, ``span()`` hands back one
    shared no-op context manager. Mirrors ``_NullOpCounters``."""

    __slots__ = ()

    enabled = False
    cycles = 0
    slow_cycles = 0

    def begin_cycle(self, **meta: object) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def end_cycle(self, **meta: object) -> None:
        return None

    def last_traces(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        return []

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        return {}


#: shared do-nothing tracer (see :class:`_NullTracer`).
NULL_TRACER = _NullTracer()
