"""Zero-dependency metrics instruments and the process-wide registry.

Three instrument kinds, modelled on the Prometheus client data model
but with none of its dependencies:

- :class:`Counter` — monotonically increasing int;
- :class:`Gauge` — last-written float;
- :class:`Histogram` — fixed buckets chosen at registration, cumulative
  counts rendered Prometheus-style (``le`` upper bounds + ``+Inf``).

Every instrument is a plain-attribute object mutated by exactly one
writer thread (the engine loop, a delivery consumer, a shard worker).
Under CPython's GIL an ``int += 1`` / attribute store is atomic, so the
fast path takes no lock — the "lock-free single-writer" discipline.
Cross-thread/cross-process aggregation happens explicitly instead:
:meth:`MetricsRegistry.snapshot` captures a picklable/JSON-able dict,
and :meth:`MetricsRegistry.merge` folds such a snapshot (typically a
shard worker's per-cycle *delta*) into another registry.

Merging mirrors the sharded engine's replicated-counter discipline
(:mod:`repro.parallel.sharded`): counters and histograms are additive
across shards (each shard owns a disjoint slice of the query work),
but instruments whose names are passed in ``replicated`` describe
stream state every shard holds a full copy of — those are adopted from
one designated shard (``adopt_replicated=True``) and skipped for the
rest, keeping merged totals equal to a single-process run. Gauges are
last-writer-wins in merge order.

Existing :class:`~repro.core.stats.OpCounters` fields are *not*
mirrored into counter instruments at increment time — that would make
every algorithm hot loop pay twice. Instead
:func:`publish_op_counters` registers a collect-time adapter: the
registry re-reads ``counters.as_dict()`` whenever a snapshot or
exposition is taken, so the wire view is always current and no
algorithm code double-counts.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "publish_op_counters",
    "DEFAULT_LATENCY_BUCKETS",
    "OP_COUNTER_PREFIX",
]

#: default histogram buckets for latency-flavoured instruments, in
#: seconds: 100µs .. 10s, roughly ×3 apart, plus +Inf implicitly.
DEFAULT_LATENCY_BUCKETS: Sequence[float] = (
    0.0001,
    0.0003,
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
)

#: prefix under which :func:`publish_op_counters` exposes OpCounters
#: fields (``repro_op_arrivals_total`` and friends).
OP_COUNTER_PREFIX = "repro_op_"


class Counter:
    """Monotonic integer counter. Single-writer fast path: ``inc()``
    is one int add, no lock."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written float value."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: cumulative counts are derived at render
    time from per-bucket tallies, so ``observe()`` stays one index
    scan + two int adds."""

    __slots__ = ("name", "help", "bounds", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        # one tally per finite bound plus the +Inf overflow slot
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        bounds = self.bounds
        index = len(bounds)
        for i, bound in enumerate(bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-``le`` counts (ending with
        the +Inf bucket, which equals ``count``)."""
        out: List[int] = []
        running = 0
        for tally in self.bucket_counts:
            running += tally
            out.append(running)
        return out


def _render_value(value: float) -> str:
    """Prometheus sample value: ints without a trailing ``.0``."""
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Name-keyed instrument registry with snapshot/merge/exposition.

    Instrument *creation* takes a lock (rare); instrument *mutation*
    does not (hot). ``get_or_create`` semantics make registration
    idempotent so call sites never race on "who registers first".
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- registration -------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = Histogram(name, help, buckets)
            self._instruments[name] = instrument
            return instrument

    def _get_or_create(self, cls, name: str, help: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = cls(name, help)
            self._instruments[name] = instrument
            return instrument

    def add_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a collect-time callback run before every snapshot
        or exposition; it refreshes derived instruments (the
        OpCounters adapter pattern)."""
        with self._lock:
            self._collectors.append(collector)

    def instruments(self) -> List[object]:
        self._collect()
        with self._lock:
            return [
                self._instruments[name] for name in sorted(self._instruments)
            ]

    def names(self) -> List[str]:
        self._collect()
        with self._lock:
            return sorted(self._instruments)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    # -- snapshot / merge ---------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Picklable/JSON-able view: ``{"counters": {...}, "gauges":
        {...}, "histograms": {name: {"bounds": [...], "bucket_counts":
        [...], "sum": .., "count": ..}}}``."""
        self._collect()
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        with self._lock:
            items = list(self._instruments.items())
        for name, instrument in sorted(items):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[name] = {
                    "bounds": list(instrument.bounds),
                    "bucket_counts": list(instrument.bucket_counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(
        self,
        snapshot: Dict[str, Dict[str, object]],
        replicated: FrozenSet[str] = frozenset(),
        adopt_replicated: bool = True,
    ) -> None:
        """Fold a :meth:`snapshot`-shaped dict (typically a shard
        worker's per-cycle delta) into this registry.

        Counters and histograms add; gauges overwrite (last writer in
        merge order wins). Names in ``replicated`` describe
        stream-replicated state: they are *added* only when
        ``adopt_replicated`` is true (the designated shard, by
        convention shard 0) and skipped otherwise, so merged totals
        match a single-process run — the same discipline
        ``_REPLICATED_COUNTERS`` applies to ``OpCounters``.
        """
        for name, value in snapshot.get("counters", {}).items():
            if name in replicated and not adopt_replicated:
                continue
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            if name in replicated and not adopt_replicated:
                continue
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            if name in replicated and not adopt_replicated:
                continue
            histogram = self.histogram(
                name, buckets=[float(b) for b in data["bounds"]]
            )
            if list(histogram.bounds) != [float(b) for b in data["bounds"]]:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ across merge"
                )
            incoming = [int(c) for c in data["bucket_counts"]]
            for i, tally in enumerate(incoming):
                histogram.bucket_counts[i] += tally
            histogram.sum += float(data["sum"])
            histogram.count += int(data["count"])

    @staticmethod
    def delta(
        current: Dict[str, Dict[str, object]],
        previous: Dict[str, Dict[str, object]],
    ) -> Dict[str, Dict[str, object]]:
        """``current - previous`` for two cumulative snapshots of the
        *same* registry: counters and histogram tallies subtract,
        gauges pass through at their current value. This is what a
        shard worker ships per cycle so the coordinator can
        :meth:`merge` without double counting."""
        counters = {
            name: value - previous.get("counters", {}).get(name, 0)
            for name, value in current.get("counters", {}).items()
        }
        gauges = dict(current.get("gauges", {}))
        histograms: Dict[str, Dict[str, object]] = {}
        prev_hists = previous.get("histograms", {})
        for name, data in current.get("histograms", {}).items():
            prior = prev_hists.get(name)
            if prior is None:
                histograms[name] = {
                    "bounds": list(data["bounds"]),
                    "bucket_counts": list(data["bucket_counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
                continue
            histograms[name] = {
                "bounds": list(data["bounds"]),
                "bucket_counts": [
                    int(c) - int(p)
                    for c, p in zip(
                        data["bucket_counts"], prior["bucket_counts"]
                    )
                ],
                "sum": float(data["sum"]) - float(prior["sum"]),
                "count": int(data["count"]) - int(prior["count"]),
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    # -- exposition ---------------------------------------------------

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format
        0.0.4 (the ``text/plain; version=0.0.4`` body)."""
        lines: List[str] = []
        for instrument in self.instruments():
            name = instrument.name
            if instrument.help:
                help_text = instrument.help.replace("\\", "\\\\")
                help_text = help_text.replace("\n", "\\n")
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Counter):
                lines.append(f"{name} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"{name} {_render_value(instrument.value)}")
            elif isinstance(instrument, Histogram):
                cumulative = instrument.cumulative_counts()
                for bound, tally in zip(instrument.bounds, cumulative):
                    lines.append(
                        f'{name}_bucket{{le="{_render_value(bound)}"}} '
                        f"{tally}"
                    )
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{name}_sum {_render_value(instrument.sum)}")
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + "\n"


def publish_op_counters(
    registry: MetricsRegistry,
    source: Callable[[], Dict[str, int]],
    prefix: str = OP_COUNTER_PREFIX,
) -> None:
    """Auto-publish :class:`~repro.core.stats.OpCounters` fields as
    counter instruments, refreshed at collect time.

    ``source`` is called on every snapshot/exposition (e.g.
    ``monitor.counters.as_dict``) and each field lands as
    ``<prefix><field>_total`` with its *current cumulative* value —
    algorithm hot loops keep writing plain ``OpCounters`` attributes
    and never touch the registry.
    """

    def collect(reg: MetricsRegistry) -> None:
        for field, value in source().items():
            counter = reg.counter(
                f"{prefix}{field}_total",
                f"cumulative OpCounters.{field} since counter reset",
            )
            counter.value = int(value)

    registry.add_collector(collect)


def op_counter_names(fields: Iterable[str]) -> List[str]:
    """The metric names :func:`publish_op_counters` produces for the
    given OpCounters field names (exposed for tests and smoke
    checks)."""
    return [f"{OP_COUNTER_PREFIX}{field}_total" for field in fields]
