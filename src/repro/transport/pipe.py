"""Pipe transport: a spawned worker process on a multiprocessing pipe.

The original sharded engine's transport, repackaged behind the
:class:`~repro.transport.base.ShardChannel` interface. Frames are
pickled ``(command, payload)`` / ``(status, payload)`` tuples moved
with ``send_bytes``/``recv_bytes`` — byte-identical to what
``Connection.send`` produced before, but countable, so the coordinator
can report wire volume per cycle for pipes and sockets alike.

Cycle broadcasts use the columnar snapshot codec of
:mod:`repro.transport.snapshot` unchanged: above the shared-memory
threshold (NumPy backend) the attribute block rides one
``SharedMemory`` segment and only the header crosses the pipe —
the fast path is preserved bit-for-bit. The segment's bytes are
reported as ``shared_bytes``, never as wire bytes.

:class:`PipeServerChannel` is the worker-side half of the link; the
shard serve loop (:func:`repro.parallel.worker.serve_shard`) speaks to
it through the same ``receive``/``reply_ok``/``reply_error`` surface
the TCP host uses, so one loop serves both transports.
"""

from __future__ import annotations

import pickle
from multiprocessing.reduction import ForkingPickler
from typing import Any, Sequence, Tuple

from repro.core.tuples import StreamRecord
from repro.transport.base import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    ShardChannel,
    WorkerFailure,
)
from repro.transport.snapshot import encode_cycle as snapshot_encode_cycle


def _dumps(message: Tuple[str, Any]) -> bytes:
    """Pickle one frame the way ``Connection.send`` would."""
    return bytes(ForkingPickler.dumps(message))


class PipeChannel(ShardChannel):
    """Coordinator-side channel to one spawned worker process."""

    kind = "pipe"

    def __init__(self, conn: Any, process: Any) -> None:
        self._conn = conn
        self._process = process
        self._bytes_sent = 0
        self._bytes_received = 0
        self._frames_sent = 0
        self._frames_received = 0

    @classmethod
    def spawn(
        cls,
        context: Any,
        target: Any,
        args: Tuple[Any, ...],
        name: str,
    ) -> "PipeChannel":
        """Start one worker process wired to a fresh duplex pipe.

        ``target`` must be a module-level callable taking the child
        connection as its first argument (spawn-start-method safe);
        the transport does not choose it — the parallel layer passes
        its worker entry point down, keeping this module free of any
        upward dependency.
        """
        parent, child = context.Pipe(duplex=True)
        process = context.Process(
            target=target,
            args=(child, *args),
            name=name,
            daemon=True,
        )
        process.start()
        child.close()
        return cls(parent, process)

    # -- request/reply ------------------------------------------------

    def request(self, command: str, payload: Any = None) -> None:
        self._send_frame(_dumps((command, payload)))

    def send_cycle(self, payload: Any) -> None:
        self._send_frame(payload)

    @classmethod
    def encode_cycle(
        cls,
        arrivals: Sequence[StreamRecord],
        expirations: Sequence[StreamRecord],
        sketch_delta: Any = None,
    ) -> Tuple[Any, Any, int]:
        snapshot, handle = snapshot_encode_cycle(
            arrivals, expirations, sketch_delta
        )
        shared_bytes = 0
        if snapshot[0] == "shm":
            rows, dims = snapshot[2]
            shared_bytes = rows * dims * 8
        # Pickled once here, not once per channel: every pipe gets the
        # same frame bytes, and the pickling cost lands in the
        # pipelined prepare phase instead of the send phase.
        return _dumps(("cycle", snapshot)), handle, shared_bytes

    def _send_frame(self, frame: bytes) -> None:
        try:
            self._conn.send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            raise ChannelClosed(
                f"worker pipe is closed ({exc})"
            ) from None
        self._bytes_sent += len(frame)
        self._frames_sent += 1

    def response(self, timeout: float) -> Any:
        try:
            if not self._conn.poll(timeout):
                raise ChannelTimeout(
                    f"no reply from {self.describe()} within {timeout:.0f}s"
                )
            frame = self._conn.recv_bytes()
        except (EOFError, OSError):
            raise ChannelClosed(
                f"worker process {self.describe()} died mid-request"
            ) from None
        self._bytes_received += len(frame)
        self._frames_received += 1
        status, payload = pickle.loads(frame)
        if status != "ok":
            raise WorkerFailure(payload)
        return payload

    # -- readiness ----------------------------------------------------

    def waitable(self) -> Any:
        return self._conn

    def is_alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    # -- lifecycle ----------------------------------------------------

    def begin_shutdown(self) -> None:
        try:
            self.request("stop")
        except ChannelError:
            pass

    def finish_shutdown(self, timeout: float) -> None:
        if self._process is not None:
            self._process.join(timeout=timeout)
        self.terminate()

    def terminate(self) -> None:
        if self._process is not None and self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def describe(self) -> str:
        pid = getattr(self._process, "pid", None)
        return f"pipe worker pid {pid}"

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._bytes_received

    @property
    def frames_sent(self) -> int:
        return self._frames_sent

    @property
    def frames_received(self) -> int:
        return self._frames_received


class PipeServerChannel:
    """Worker-side half of a pipe channel (lives in the shard process)."""

    def __init__(self, conn: Any) -> None:
        self._conn = conn

    def receive(self) -> Tuple[str, Any]:
        try:
            frame = self._conn.recv_bytes()
        except (EOFError, OSError):
            raise ChannelClosed("coordinator pipe closed") from None
        return pickle.loads(frame)

    def reply_ok(self, payload: Any) -> None:
        self._reply(("ok", payload))

    def reply_error(self, traceback_text: str) -> None:
        self._reply(("error", traceback_text))

    def _reply(self, frame_content: Tuple[str, Any]) -> None:
        try:
            self._conn.send_bytes(_dumps(frame_content))
        except (BrokenPipeError, OSError):
            raise ChannelClosed("coordinator pipe closed") from None

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
