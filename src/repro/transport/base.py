"""The shard channel abstraction: one coordinator, N typed duplex links.

A :class:`ShardChannel` carries the shard RPC protocol — the
``(command, payload)`` requests and ``(status, payload)`` replies of
:mod:`repro.parallel.worker` — over *some* transport, and hides every
transport detail from the coordinator: no ``Connection`` objects, no
``SharedMemory`` names, no sockets leak above this interface.

Two implementations exist:

- :class:`~repro.transport.pipe.PipeChannel` — a spawned worker
  process on a duplex :mod:`multiprocessing` pipe, with the
  shared-memory snapshot fast path of :mod:`repro.transport.snapshot`
  preserved bit-for-bit;
- :class:`~repro.transport.tcp.TcpChannel` — a remote shard host
  (:mod:`repro.cluster.shard`) on a TCP socket, speaking the
  length-delimited JSON framing of :mod:`repro.transport.codec`.

Both expose the same five-verb surface — :meth:`ShardChannel.request`
(send, don't wait), :meth:`ShardChannel.response` (wait for one
reply), :meth:`ShardChannel.send_cycle`, shutdown, and byte counters —
plus a *waitable* for completion-order collection:
:func:`wait_ready` multiplexes pipes and sockets in one
:func:`multiprocessing.connection.wait` call, so a mixed pool's fast
shards are merged while slow ones still compute.

**Cycle broadcast.** Snapshot encoding is per-*transport*, not
per-channel: :func:`prepare_cycle` asks each channel *kind* present in
the pool to encode the cycle once (pipe kinds may place attributes in
shared memory; TCP kinds always produce columnar deltas on the wire)
and returns a :class:`PreparedCycle` holding one payload per kind plus
the release handles. The coordinator broadcasts with
:meth:`ShardChannel.send_cycle` and closes the prepared cycle after
every reply is in — the same lifecycle the single-transport code had.

Channel failures raise the typed errors below; the coordinator maps
them onto its :class:`~repro.core.errors.StreamError` taxonomy.
"""

from __future__ import annotations

import abc
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ReproError
from repro.core.tuples import StreamRecord


class ChannelError(ReproError):
    """Transport-level failure on a shard channel."""


class ChannelClosed(ChannelError):
    """The peer closed the link (worker death, socket EOF/reset)."""


class ChannelTimeout(ChannelError):
    """No reply arrived within the allowed wait."""


class WorkerFailure(ChannelError):
    """The remote shard raised; the message is its traceback text."""


class ShardChannel(abc.ABC):
    """One duplex request/reply link between coordinator and shard.

    At most one request may be outstanding per channel at any time
    (the coordinator's pipelining guard enforces this one level up);
    replies are matched to requests by order.
    """

    #: transport discriminator (``"pipe"`` / ``"tcp"``); also the key
    #: under which :class:`PreparedCycle` stores this transport's
    #: encoded cycle payload.
    kind: str = "abstract"

    @abc.abstractmethod
    def request(self, command: str, payload: Any = None) -> None:
        """Send one ``(command, payload)`` request without waiting."""

    @abc.abstractmethod
    def response(self, timeout: float) -> Any:
        """Wait for one reply and return its payload.

        Raises :class:`ChannelTimeout` after ``timeout`` seconds,
        :class:`ChannelClosed` when the peer is gone, and
        :class:`WorkerFailure` when the shard replied with an error
        (the exception text is the remote traceback).
        """

    @abc.abstractmethod
    def send_cycle(self, payload: Any) -> None:
        """Send one prepared cycle broadcast (``PreparedCycle``
        payload of this channel's :attr:`kind`) without waiting."""

    @classmethod
    @abc.abstractmethod
    def encode_cycle(
        cls,
        arrivals: Sequence[StreamRecord],
        expirations: Sequence[StreamRecord],
        sketch_delta: Any = None,
    ) -> Tuple[Any, Any, int]:
        """Encode one cycle for this transport.

        Returns ``(payload, handle, shared_bytes)``: a payload every
        channel of this kind can :meth:`send_cycle`, a release handle
        (``handle.close()`` after all replies are in), and the number
        of bytes placed in shared memory rather than on the wire
        (zero for purely wire-borne transports). ``sketch_delta``
        (the approximate tier's columnar cell-population delta, None
        for exact pools) rides inside the payload so every worker's
        sketch applies coordinator-derived columns.
        """

    @abc.abstractmethod
    def waitable(self) -> Any:
        """Object accepted by :func:`multiprocessing.connection.wait`
        that becomes ready when a reply can be read."""

    def has_buffered(self) -> bool:
        """True when reply bytes are already buffered locally (the
        waitable would not signal them)."""
        return False

    @abc.abstractmethod
    def is_alive(self) -> bool:
        """Best-effort liveness of the peer."""

    @abc.abstractmethod
    def begin_shutdown(self) -> None:
        """Ask the peer to stop (best effort, never raises)."""

    @abc.abstractmethod
    def finish_shutdown(self, timeout: float) -> None:
        """Wait for a graceful stop, then release local resources."""

    @abc.abstractmethod
    def terminate(self) -> None:
        """Tear the link down immediately (never raises)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable endpoint, e.g. ``pid 4242`` / an address."""

    @property
    @abc.abstractmethod
    def bytes_sent(self) -> int:
        """Cumulative request bytes written to this channel."""

    @property
    @abc.abstractmethod
    def bytes_received(self) -> int:
        """Cumulative reply bytes read from this channel."""

    @property
    def frames_sent(self) -> int:
        """Cumulative request/broadcast frames written (0 when the
        transport does not count frames)."""
        return 0

    @property
    def frames_received(self) -> int:
        """Cumulative reply frames read (0 when uncounted)."""
        return 0


def wait_ready(
    channels: Sequence[ShardChannel], timeout: float
) -> List[ShardChannel]:
    """The subset of ``channels`` with a readable reply, waiting up to
    ``timeout`` seconds; empty on timeout.

    Channels holding locally buffered reply bytes are returned
    immediately — their waitable would stay silent.
    """
    buffered = [channel for channel in channels if channel.has_buffered()]
    if buffered:
        return buffered
    by_waitable = {channel.waitable(): channel for channel in channels}
    ready = mp_connection.wait(list(by_waitable), timeout=timeout)
    return [by_waitable[waitable] for waitable in ready]


class PreparedCycle:
    """One cycle's broadcast, encoded once per transport kind.

    Produced by :func:`prepare_cycle`; consumed by exactly one
    ``begin``/``finish`` pair. ``close()`` releases every transport's
    resources (the pipe transport's shared-memory segment, chiefly)
    and is idempotent.
    """

    __slots__ = ("_payloads", "_handles", "shared_bytes")

    def __init__(
        self,
        payloads: Dict[str, Any],
        handles: List[Any],
        shared_bytes: int,
    ) -> None:
        self._payloads = payloads
        self._handles = handles
        #: bytes carried via shared memory instead of the wire this
        #: cycle (pipe transport fast path; 0 otherwise).
        self.shared_bytes = shared_bytes

    def payload_for(self, kind: str) -> Any:
        return self._payloads[kind]

    def close(self) -> None:
        handles, self._handles = self._handles, []
        for handle in handles:
            handle.close()


def prepare_cycle(
    channels: Sequence[ShardChannel],
    arrivals: Sequence[StreamRecord],
    expirations: Sequence[StreamRecord],
    sketch_delta: Any = None,
) -> PreparedCycle:
    """Encode one cycle for every transport kind present in the pool."""
    encoders = {}
    for channel in channels:
        encoders.setdefault(channel.kind, type(channel))
    payloads: Dict[str, Any] = {}
    handles: List[Any] = []
    shared_bytes = 0
    for kind in sorted(encoders):
        if sketch_delta is None:
            payload, handle, nbytes = encoders[kind].encode_cycle(
                arrivals, expirations
            )
        else:
            payload, handle, nbytes = encoders[kind].encode_cycle(
                arrivals, expirations, sketch_delta
            )
        payloads[kind] = payload
        handles.append(handle)
        shared_bytes += nbytes
    return PreparedCycle(payloads, handles, shared_bytes)


def publish_channel_metrics(registry, channels: Sequence[ShardChannel]) -> None:
    """Publish every channel's cumulative byte/frame totals as gauges.

    Per-channel gauges are keyed by shard index in the metric *name*
    (``repro_transport_shard0_sent_bytes`` ...) — the exposition format
    here is label-free — plus pool-wide totals under
    ``repro_transport_{sent,received}_bytes`` and
    ``repro_transport_frames_{sent,received}``. Gauges rather than
    counters: channel totals restart from zero when a pool is rebuilt,
    which a counter must never do.
    """
    total_sent = total_received = 0
    total_frames_sent = total_frames_received = 0
    for index, channel in enumerate(channels):
        prefix = f"repro_transport_shard{index}_"
        help_suffix = f"on the shard-{index} {channel.kind} channel"
        registry.gauge(
            prefix + "sent_bytes", f"cumulative bytes written {help_suffix}"
        ).set(float(channel.bytes_sent))
        registry.gauge(
            prefix + "received_bytes", f"cumulative bytes read {help_suffix}"
        ).set(float(channel.bytes_received))
        registry.gauge(
            prefix + "frames_sent", f"cumulative frames written {help_suffix}"
        ).set(float(channel.frames_sent))
        registry.gauge(
            prefix + "frames_received", f"cumulative frames read {help_suffix}"
        ).set(float(channel.frames_received))
        total_sent += channel.bytes_sent
        total_received += channel.bytes_received
        total_frames_sent += channel.frames_sent
        total_frames_received += channel.frames_received
    registry.gauge(
        "repro_transport_sent_bytes",
        "cumulative bytes written across all shard channels",
    ).set(float(total_sent))
    registry.gauge(
        "repro_transport_received_bytes",
        "cumulative bytes read across all shard channels",
    ).set(float(total_received))
    registry.gauge(
        "repro_transport_frames_sent",
        "cumulative frames written across all shard channels",
    ).set(float(total_frames_sent))
    registry.gauge(
        "repro_transport_frames_received",
        "cumulative frames read across all shard channels",
    ).set(float(total_frames_received))


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``.

    The split is on the *last* colon, so bracketless IPv6 hosts with
    an explicit port parse too; a missing or non-integer port raises
    :class:`ChannelError`.
    """
    if not isinstance(address, str) or ":" not in address:
        raise ChannelError(
            f"shard address must look like 'host:port', got {address!r}"
        )
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ChannelError(
            f"shard address {address!r} has a non-integer port"
        ) from None
    if not host:
        raise ChannelError(f"shard address {address!r} has an empty host")
    return host.strip("[]"), port
