"""Length-delimited JSON wire format of the TCP shard channel.

Every message is one frame: a 4-byte big-endian unsigned length
followed by that many bytes of compact UTF-8 JSON. The JSON body is
produced by :func:`repro.service.protocol.encode_body` — the same
repr-faithful float encoder the serving protocol uses — so IEEE-754
doubles cross the wire bit-for-bit and a remote shard rebuilds records
and entries identical to the coordinator's (the precondition for
bitwise parity between remote-sharded and single-process runs).

One frame per request, one per reply, matched by order (at most one
request is outstanding per channel). Requests carry ``{"op": ...}``;
replies carry ``{"ok": true, ...}`` or ``{"ok": false, "error": txt}``
where ``txt`` is the remote traceback. Reply payload shapes depend on
the request's op, so decoding takes the pending command.

**Cycle deltas.** The ``cycle`` request ships only the cycle's *new*
and *expired* records as columns (ids / timestamps / attribute rows) —
never the full window — mirroring the columnar pipe snapshot
(:mod:`repro.transport.snapshot`) in JSON instead of shared memory.

Only wire-serialisable queries cross this codec: plain linear top-k
and threshold specs, exactly the kinds
:func:`repro.service.protocol.query_to_wire` supports, extended with
the coordinator-assigned ``qid``. Anything else raises
:class:`~repro.service.protocol.ProtocolError` locally, before any
bytes move.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.results import ResultChange, ResultEntry
from repro.core.scoring import LinearFunction
from repro.core.tuples import StreamRecord
from repro.service.protocol import (
    ProtocolError,
    change_from_wire,
    change_to_wire,
    decode_line,
    encode_body,
    entries_from_wire,
    entries_to_wire,
    query_from_wire,
    query_to_wire,
)

#: shard wire-protocol revision, exchanged in the ``configure``
#: handshake; a host refuses a coordinator with a different revision.
#: Revision 2 added the optional columnar sketch delta on ``cycle``
#: requests and the ``sketch`` introspection op (approximate tier).
#: Revision 3 added the optional ``metrics`` key on ``cycle`` replies
#: (the worker registry's per-cycle delta) and the reserved ``_obs``
#: entry in configure options (observability tier).
SHARD_PROTOCOL_VERSION = 3

#: hard per-frame ceiling — a length header beyond this is treated as
#: stream corruption, not an allocation request.
MAX_FRAME_BYTES = 512 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: requests that carry no payload at all.
_BARE_OPS = ("stats", "space", "ping", "stop", "sketch")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def frame_body(body: bytes) -> bytes:
    """JSON body → one length-prefixed frame."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _HEADER.pack(len(body)) + body


def frame_message(message: Dict[str, Any]) -> bytes:
    """One message dict → one length-prefixed frame."""
    return frame_body(encode_body(message))


def body_length(header: bytes) -> int:
    """Decode a 4-byte frame header into the body length."""
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes (> "
            f"{MAX_FRAME_BYTES}); stream is corrupt"
        )
    return length


def decode_body(body: bytes) -> Dict[str, Any]:
    """One frame body → message dict (shares the serving protocol's
    JSON decoding and error taxonomy)."""
    return decode_line(body)


# ----------------------------------------------------------------------
# Columnar record batches (cycle deltas)
# ----------------------------------------------------------------------


def _records_to_wire(
    records: Sequence[StreamRecord],
) -> Dict[str, List[Any]]:
    return {
        "rids": [record.rid for record in records],
        "times": [record.time for record in records],
        "rows": [list(record.attrs) for record in records],
    }


def _columns_from_wire(
    payload: Dict[str, Any],
) -> Tuple[List[int], List[float], List[List[float]]]:
    try:
        rids = [int(rid) for rid in payload["rids"]]
        times = [float(stamp) for stamp in payload["times"]]
        rows = [
            [float(value) for value in row] for row in payload["rows"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed record columns: {exc}") from None
    if not (len(rids) == len(times) == len(rows)):
        raise ProtocolError(
            f"ragged record columns: {len(rids)} rids, "
            f"{len(times)} times, {len(rows)} rows"
        )
    return rids, times, rows


def encode_cycle_request(
    arrivals: Sequence[StreamRecord],
    expirations: Sequence[StreamRecord],
    sketch_delta=None,
) -> bytes:
    """One cycle's deltas → a ready-to-send ``cycle`` request frame.

    Encoded once per cycle regardless of how many TCP channels will
    broadcast it (the TCP transport's :meth:`encode_cycle`).
    ``sketch_delta`` — the approximate tier's columnar cell-population
    delta — rides as an optional ``"sketch"`` key; exact pools omit it
    and keep the revision-1 frame shape.
    """
    message = {
        "op": "cycle",
        "ins": _records_to_wire(arrivals),
        "del": _records_to_wire(expirations),
    }
    if sketch_delta is not None:
        message["sketch"] = _sketch_to_wire(sketch_delta)
    return frame_message(message)


def _sketch_to_wire(delta) -> Dict[str, Any]:
    return {
        "tick": int(delta["tick"]),
        "add_cells": list(delta["add_cells"]),
        "add_counts": list(delta["add_counts"]),
        "drop_cells": list(delta["drop_cells"]),
        "drop_counts": list(delta["drop_counts"]),
    }


def _sketch_from_wire(payload: Dict[str, Any]) -> Dict[str, Any]:
    try:
        delta = {
            "tick": int(payload["tick"]),
            "add_cells": [int(cell) for cell in payload["add_cells"]],
            "add_counts": [int(n) for n in payload["add_counts"]],
            "drop_cells": [int(cell) for cell in payload["drop_cells"]],
            "drop_counts": [int(n) for n in payload["drop_counts"]],
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed sketch delta: {exc}") from None
    if len(delta["add_cells"]) != len(delta["add_counts"]) or len(
        delta["drop_cells"]
    ) != len(delta["drop_counts"]):
        raise ProtocolError("ragged sketch delta columns")
    return delta


# ----------------------------------------------------------------------
# Queries (serving-protocol specs + the coordinator-assigned qid)
# ----------------------------------------------------------------------


def shard_query_to_wire(query: object) -> Dict[str, Any]:
    spec = query_to_wire(query)
    spec["qid"] = getattr(query, "qid", -1)
    return spec


def shard_query_from_wire(payload: Dict[str, Any]) -> object:
    query = query_from_wire(payload)
    try:
        query.qid = int(payload.get("qid", -1))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire qid: {exc}") from None
    return query


def _weights_of(function: object) -> List[float]:
    if not isinstance(function, LinearFunction):
        raise ProtocolError(
            "only LinearFunction preferences are wire-serialisable; "
            f"{type(function).__name__} is not"
        )
    return list(function.weights)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


def encode_request(command: str, payload: Any) -> Dict[str, Any]:
    """One coordinator request → message dict.

    ``payload`` is the exact object the in-process worker protocol
    carries for ``command`` (see :mod:`repro.parallel.worker`); for
    ``cycle`` it is the ``("cols", ...)`` snapshot triple.
    """
    if command == "cycle":
        kind = payload[0]
        if kind != "cols":  # shm payloads never cross a socket
            raise ProtocolError(
                f"cycle payload kind {kind!r} is not wire-serialisable"
            )
        _, arrivals_cols, expirations_cols = payload[:3]
        rids_a, times_a, rows_a = arrivals_cols
        rids_e, times_e, rows_e = expirations_cols
        message = {
            "op": "cycle",
            "ins": {
                "rids": list(rids_a),
                "times": list(times_a),
                "rows": [list(row) for row in rows_a],
            },
            "del": {
                "rids": list(rids_e),
                "times": list(times_e),
                "rows": [list(row) for row in rows_e],
            },
        }
        if len(payload) > 3 and payload[3] is not None:
            message["sketch"] = _sketch_to_wire(payload[3])
        return message
    if command == "register_many":
        return {
            "op": "register_many",
            "queries": [shard_query_to_wire(query) for query in payload],
        }
    if command == "unregister":
        return {"op": "unregister", "qid": int(payload)}
    if command == "update":
        qid, k, function = payload
        return {
            "op": "update",
            "qid": int(qid),
            "k": None if k is None else int(k),
            "weights": None if function is None else _weights_of(function),
        }
    if command == "configure":
        return {"op": "configure", **payload}
    if command in _BARE_OPS:
        return {"op": command}
    raise ProtocolError(f"unknown shard command {command!r}")


def decode_request(message: Dict[str, Any]) -> Tuple[str, Any]:
    """Message dict → ``(command, payload)`` in the worker protocol's
    internal shapes (cycle payloads come back as ``("cols", ...)``
    triples, ready for :func:`repro.transport.snapshot.decode_cycle`)."""
    op = message.get("op")
    try:
        if op == "cycle":
            payload = (
                "cols",
                _columns_from_wire(message["ins"]),
                _columns_from_wire(message["del"]),
            )
            if "sketch" in message:
                payload = payload + (
                    _sketch_from_wire(message["sketch"]),
                )
            return "cycle", payload
        if op == "register_many":
            return "register_many", [
                shard_query_from_wire(spec) for spec in message["queries"]
            ]
        if op == "unregister":
            return "unregister", int(message["qid"])
        if op == "update":
            weights = message.get("weights")
            function = (
                None
                if weights is None
                else LinearFunction([float(w) for w in weights])
            )
            k = message.get("k")
            return "update", (
                int(message["qid"]),
                None if k is None else int(k),
                function,
            )
        if op == "configure":
            return "configure", {
                key: value
                for key, value in message.items()
                if key != "op"
            }
        if op in _BARE_OPS:
            return str(op), None
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed {op!r} request: {exc}"
        ) from None
    raise ProtocolError(f"unknown shard op {op!r}")


# ----------------------------------------------------------------------
# Replies (shape keyed by the request's op)
# ----------------------------------------------------------------------


def _counters_to_wire(counters: Dict[str, int]) -> Dict[str, int]:
    return dict(counters)


def _counters_from_wire(payload: Any) -> Dict[str, int]:
    try:
        return {str(key): int(value) for key, value in payload.items()}
    except (AttributeError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed wire counters: {exc}") from None


def encode_reply(command: str, payload: Any) -> Dict[str, Any]:
    """One successful worker reply → message dict.

    ``payload`` is exactly what
    :func:`repro.parallel.worker.dispatch_command` returned for
    ``command``.
    """
    if command == "cycle":
        changes_by_qid, counters = payload[0], payload[1]
        metrics_delta = payload[2] if len(payload) > 2 else None
        message = {
            "ok": True,
            "changes": [
                change_to_wire(change)
                for _, change in sorted(changes_by_qid.items())
            ],
            "counters": _counters_to_wire(counters),
        }
        if metrics_delta is not None:
            # Snapshot-shaped dicts (MetricsRegistry.delta) are plain
            # JSON already: counters/gauges are flat name→number maps,
            # histograms carry bounds + tallies.
            message["metrics"] = metrics_delta
        return message
    if command == "register_many":
        per_qid, counters = payload
        return {
            "ok": True,
            "results": [
                {"qid": qid, "entries": entries_to_wire(per_qid[qid])}
                for qid in sorted(per_qid)
            ],
            "counters": _counters_to_wire(counters),
        }
    if command == "unregister":
        _, counters = payload
        return {"ok": True, "counters": _counters_to_wire(counters)}
    if command == "update":
        wire_entries, counters = payload
        return {
            "ok": True,
            "entries": entries_to_wire(wire_entries),
            "counters": _counters_to_wire(counters),
        }
    if command == "stats":
        (sizes, il_entries), counters = payload
        return {
            "ok": True,
            "sizes": [[qid, sizes[qid]] for qid in sorted(sizes)],
            "il_entries": int(il_entries),
            "counters": _counters_to_wire(counters),
        }
    if command == "space":
        return {"ok": True, "space": _space_to_wire(payload)}
    if command == "sketch":
        # The sketch snapshot is already canonical JSON-able state
        # (ints, lists, strings) — see CellSketch.state().
        return {"ok": True, "sketch": payload}
    if command == "ping":
        return {"ok": True}
    if command == "stop":
        return {"ok": True}
    if command == "configure":
        return {"ok": True, **payload}
    raise ProtocolError(f"unknown shard command {command!r}")


def encode_error_reply(traceback_text: str) -> Dict[str, Any]:
    return {"ok": False, "error": str(traceback_text)}


def decode_reply(
    command: str, message: Dict[str, Any]
) -> Tuple[str, Any]:
    """Message dict → ``(status, payload)`` in the worker protocol's
    internal shapes, matched to the pending ``command``."""
    if not message.get("ok", False):
        return "error", str(message.get("error", "unknown shard error"))
    try:
        if command == "cycle":
            changes: Dict[int, ResultChange] = {}
            for spec in message["changes"]:
                change = change_from_wire(spec)
                changes[change.qid] = change
            return "ok", (
                changes,
                _counters_from_wire(message["counters"]),
                message.get("metrics"),
            )
        if command == "register_many":
            per_qid: Dict[int, List[ResultEntry]] = {}
            for item in message["results"]:
                per_qid[int(item["qid"])] = entries_from_wire(
                    item["entries"]
                )
            return "ok", (per_qid, _counters_from_wire(message["counters"]))
        if command == "unregister":
            return "ok", (None, _counters_from_wire(message["counters"]))
        if command == "update":
            return "ok", (
                entries_from_wire(message["entries"]),
                _counters_from_wire(message["counters"]),
            )
        if command == "stats":
            sizes = {int(qid): int(size) for qid, size in message["sizes"]}
            return "ok", (
                (sizes, int(message["il_entries"])),
                _counters_from_wire(message["counters"]),
            )
        if command == "space":
            return "ok", _space_from_wire(message["space"])
        if command == "sketch":
            return "ok", message.get("sketch")
        if command == "ping":
            return "ok", "pong"
        if command == "stop":
            return "ok", None
        if command == "configure":
            return "ok", {
                key: value
                for key, value in message.items()
                if key != "ok"
            }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed {command!r} reply: {exc}"
        ) from None
    raise ProtocolError(f"unknown shard command {command!r}")


def _space_to_wire(breakdown: object) -> Dict[str, int]:
    fields = breakdown.as_dict()  # type: ignore[attr-defined]
    fields.pop("total", None)  # recomputed property, not state
    return {str(key): int(value) for key, value in fields.items()}


def _space_from_wire(payload: Dict[str, Any]):
    from repro.analysis.memory import SpaceBreakdown

    try:
        return SpaceBreakdown(
            **{str(key): int(value) for key, value in payload.items()}
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed wire space breakdown: {exc}"
        ) from None
