"""Transport layer: shard channels under the parallel/serving tiers.

Layering (see ``docs/ARCHITECTURE.md``)::

    core  →  transport  →  parallel / service  →  cluster

- :mod:`~repro.transport.base` — the :class:`ShardChannel` interface,
  typed channel errors, mixed-transport completion-order
  :func:`wait_ready`, and the per-kind :func:`prepare_cycle` broadcast
  encoding;
- :mod:`~repro.transport.pipe` — worker processes on multiprocessing
  pipes (the shared-memory snapshot fast path preserved bit-for-bit);
- :mod:`~repro.transport.tcp` — remote shard hosts on length-delimited
  JSON frames (:mod:`~repro.transport.codec`), columnar cycle deltas
  on the wire;
- :mod:`~repro.transport.snapshot` — the columnar cycle snapshot
  codec the pipe transport broadcasts.

This package depends only on :mod:`repro.core` and the wire codec of
:mod:`repro.service.protocol`; it never imports the parallel, serving
or cluster tiers above it.
"""

from repro.transport.base import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    PreparedCycle,
    ShardChannel,
    WorkerFailure,
    parse_address,
    prepare_cycle,
    wait_ready,
)
from repro.transport.pipe import PipeChannel, PipeServerChannel
from repro.transport.tcp import TcpChannel, TcpServerChannel

__all__ = [
    "ChannelClosed",
    "ChannelError",
    "ChannelTimeout",
    "PipeChannel",
    "PipeServerChannel",
    "PreparedCycle",
    "ShardChannel",
    "TcpChannel",
    "TcpServerChannel",
    "WorkerFailure",
    "parse_address",
    "prepare_cycle",
    "wait_ready",
]
