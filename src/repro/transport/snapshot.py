"""Columnar cycle snapshots broadcast from coordinator to shards.

This is the *pipe transport's* cycle encoding (the TCP transport
sends the same columns as JSON deltas — see
:mod:`repro.transport.codec`). Each processing cycle the coordinator
must hand every worker the same ``P_ins`` / ``P_del`` batches. Records are decomposed into columns —
ids, timestamps, and one attribute block packed the same way the batch
kernels pack theirs (:func:`repro.core.batch.as_matrix`):

- **NumPy backend**: arrivals and expirations share one ``(n, d)``
  float64 matrix placed in a :mod:`multiprocessing.shared_memory`
  segment, so N workers read the attribute payload without N pickled
  copies travelling through pipes. Ids and times (small, one int/float
  per record) ride along in the pickled header.
- **Pure-Python backend** (``REPRO_BATCH_BACKEND=python``): the block
  is a plain list of attribute tuples, pickled with the header —
  exactly the fallback contract of :mod:`repro.core.batch`.

**Exactness.** Attributes are Python floats, i.e. IEEE-754 doubles;
the float64 round trip through the matrix is lossless, so a worker
rebuilds records bit-for-bit identical to the coordinator's — the
precondition for sharded results matching single-process results under
the canonical ``(score, rid)`` order.

Lifecycle: :func:`encode_cycle` returns ``(payload, handle)``; the
coordinator broadcasts the payload, waits for every worker's reply
(workers copy out of the segment inside :func:`decode_cycle`, before
replying), then calls ``handle.close()`` which unlinks the segment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core import batch
from repro.core.tuples import StreamRecord

Batches = Tuple[List[StreamRecord], List[StreamRecord]]

#: attribute-block size below which pickled columns beat a shared
#: segment: shm pays create + N × attach/mmap + unlink syscalls per
#: cycle, which only amortises once the block stops being pipe-sized.
SHM_MIN_BYTES = 16384


class _NullHandle:
    """Handle for payloads with nothing to release."""

    __slots__ = ()

    def close(self) -> None:
        pass


class _SharedBlockHandle:
    """Owns the shared-memory segment backing one cycle's attributes."""

    __slots__ = ("_shm",)

    def __init__(self, shm) -> None:
        self._shm = shm

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass
            self._shm = None


def _columns(records: Sequence[StreamRecord]):
    rids = [record.rid for record in records]
    times = [record.time for record in records]
    rows = [record.attrs for record in records]
    return rids, times, rows


def encode_cycle(
    arrivals: Sequence[StreamRecord],
    expirations: Sequence[StreamRecord],
    sketch_delta=None,
):
    """Encode one cycle's batches; returns ``(payload, handle)``.

    The payload is picklable and may be broadcast to any number of
    workers; call ``handle.close()`` only after every worker replied.
    ``sketch_delta`` (a columnar :data:`repro.approx.sketch.SketchDelta`
    of the approximate tier) rides as an optional trailing element;
    without one the payload shapes are exactly the pre-sketch ones.
    """
    rids_a, times_a, rows_a = _columns(arrivals)
    rids_e, times_e, rows_e = _columns(expirations)
    rows = rows_a + rows_e
    if (
        batch.np is not None
        and rows
        and len(rows) * len(rows[0]) * 8 >= SHM_MIN_BYTES
    ):
        payload, shm = _encode_shared(
            rows, rids_a, times_a, rids_e, times_e
        )
        if sketch_delta is not None:
            payload = payload + (sketch_delta,)
        return payload, _SharedBlockHandle(shm)
    payload = (
        "cols",
        (rids_a, times_a, rows_a),
        (rids_e, times_e, rows_e),
    )
    if sketch_delta is not None:
        payload = payload + (sketch_delta,)
    return payload, _NullHandle()


def _encode_shared(rows, rids_a, times_a, rids_e, times_e):
    from multiprocessing import shared_memory

    np = batch.np
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.ndim != 2:  # ragged rows cannot happen from StreamRecords
        raise ValueError(f"inhomogeneous attribute rows: {matrix.shape}")
    shm = shared_memory.SharedMemory(create=True, size=max(1, matrix.nbytes))
    view = np.ndarray(matrix.shape, dtype=np.float64, buffer=shm.buf)
    view[:] = matrix
    payload = (
        "shm",
        shm.name,
        matrix.shape,
        rids_a,
        times_a,
        rids_e,
        times_e,
    )
    return payload, shm


def decode_cycle(payload) -> Batches:
    """Rebuild ``(arrivals, expirations)`` from an encoded payload.

    A trailing sketch delta, if present, is ignored here — workers
    read it separately via :func:`sketch_delta_of`.
    """
    kind = payload[0]
    if kind == "cols":
        _, (rids_a, times_a, rows_a), (rids_e, times_e, rows_e) = (
            payload[:3]
        )
        return (
            _build(rids_a, times_a, rows_a),
            _build(rids_e, times_e, rows_e),
        )
    if kind != "shm":  # pragma: no cover - protocol guard
        raise ValueError(f"unknown snapshot payload kind {kind!r}")
    _, name, shape, rids_a, times_a, rids_e, times_e = payload[:7]
    rows = _read_shared(name, shape)
    split = len(rids_a)
    return (
        _build(rids_a, times_a, rows[:split]),
        _build(rids_e, times_e, rows[split:]),
    )


def sketch_delta_of(payload):
    """The trailing sketch delta of an encoded cycle payload, or None."""
    base = 3 if payload[0] == "cols" else 7
    return payload[base] if len(payload) > base else None


def _read_shared(name: str, shape) -> List[Sequence[float]]:
    np = batch.np
    shm = _attach_untracked(name)
    try:
        view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        rows = view.tolist()  # lossless float64 -> Python float
    finally:
        shm.close()
    return rows


def _attach_untracked(name: str):
    """Attach to an existing segment without tracker registration.

    The *coordinator* owns the segment (it created, registered, and
    will unlink it); a reader registering it too would make some
    resource tracker double-clean it — a KeyError in a fork-shared
    tracker, a spurious "leaked shared_memory" warning in a spawned
    worker's own. Python 3.13 exposes ``track=False`` for exactly
    this; earlier versions need the registration suppressed during
    attach (the documented community workaround for CPython #82300).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _build(rids, times, rows) -> List[StreamRecord]:
    return [
        StreamRecord(rid, tuple(row), time)
        for rid, row, time in zip(rids, rows, times)
    ]
