"""TCP transport: a remote shard host on a length-delimited socket.

:class:`TcpChannel` is the coordinator-side channel to one
:mod:`repro.cluster.shard` host. It speaks the framing and message
shapes of :mod:`repro.transport.codec` — 4-byte length header plus
repr-faithful JSON — and opens every session with a ``configure``
handshake that tells the host which per-shard algorithm to build
(protocol revision, algorithm name, dims, grid granularity, factory
options). ``TCP_NODELAY`` is set on both ends: shard RPCs are strict
request/reply, so Nagle batching would only add latency.

Cycle broadcasts are columnar *deltas* — the cycle's new and expired
records only, never the full window — encoded once per cycle
(:meth:`TcpChannel.encode_cycle`) and reused by every TCP channel in
the pool. Bytes are counted in both directions; the coordinator
surfaces them per cycle through ``stats()``.

The raw socket doubles as the channel's waitable
(:func:`multiprocessing.connection.wait` accepts sockets, and mixes
them with pipe ``Connection`` objects in one call), so completion-
order reply collection works across transports. Reads are buffered;
``has_buffered()`` keeps a partially read frame from stalling the
wait loop.

:class:`TcpServerChannel` is the host-side half: it decodes request
frames into the worker protocol's ``(command, payload)`` shapes and
encodes replies per the pending command, giving the shard serve loop
the same surface as the pipe's worker side.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.tuples import StreamRecord
from repro.transport import codec
from repro.transport.base import (
    ChannelClosed,
    ChannelError,
    ChannelTimeout,
    ShardChannel,
    WorkerFailure,
    parse_address,
)


class _NullHandle:
    """Nothing to release: TCP cycles are wholly wire-borne."""

    __slots__ = ()

    def close(self) -> None:
        pass


def _set_nodelay(sock: socket.socket) -> None:
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - AF_UNIX etc.
        pass


class TcpChannel(ShardChannel):
    """Coordinator-side channel to one remote shard host."""

    kind = "tcp"

    def __init__(self, sock: socket.socket, address: str) -> None:
        self._sock: Optional[socket.socket] = sock
        self._address = address
        self._buffer = bytearray()
        self._pending_commands: List[str] = []
        self._bytes_sent = 0
        self._bytes_received = 0
        self._frames_sent = 0
        self._frames_received = 0

    @classmethod
    def connect(
        cls,
        address: str,
        *,
        algorithm: str,
        dims: int,
        cells_per_axis: Optional[int],
        options: Dict[str, Any],
        timeout: float,
    ) -> "TcpChannel":
        """Dial one shard host and run the ``configure`` handshake.

        The host builds its algorithm instance before replying, so a
        successful connect returns a shard that is ready to register
        queries; an unknown algorithm or option set surfaces here as
        :class:`~repro.transport.base.WorkerFailure` with the remote
        traceback.
        """
        host, port = parse_address(address)
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ChannelError(
                f"cannot connect to shard host {address!r}: {exc}"
            ) from None
        sock.settimeout(None)
        _set_nodelay(sock)
        channel = cls(sock, address)
        try:
            channel.request(
                "configure",
                {
                    "protocol": codec.SHARD_PROTOCOL_VERSION,
                    "algorithm": algorithm,
                    "dims": dims,
                    "cells_per_axis": cells_per_axis,
                    "options": dict(options),
                },
            )
            channel.response(timeout)
        except BaseException:
            channel.terminate()
            raise
        return channel

    # -- request/reply ------------------------------------------------

    def request(self, command: str, payload: Any = None) -> None:
        frame = codec.frame_message(codec.encode_request(command, payload))
        self._send_frame(frame)
        self._pending_commands.append(command)

    def send_cycle(self, payload: Any) -> None:
        self._send_frame(payload)
        self._pending_commands.append("cycle")

    @classmethod
    def encode_cycle(
        cls,
        arrivals: Sequence[StreamRecord],
        expirations: Sequence[StreamRecord],
        sketch_delta: Any = None,
    ) -> Tuple[Any, Any, int]:
        frame = codec.encode_cycle_request(
            arrivals, expirations, sketch_delta
        )
        return frame, _NullHandle(), 0

    def _send_frame(self, frame: bytes) -> None:
        if self._sock is None:
            raise ChannelClosed(
                f"channel to {self._address} is already closed"
            )
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise ChannelClosed(
                f"send to shard host {self._address} failed ({exc})"
            ) from None
        self._bytes_sent += len(frame)
        self._frames_sent += 1

    def response(self, timeout: float) -> Any:
        if not self._pending_commands:
            raise ChannelError(
                f"no outstanding request on channel to {self._address}"
            )
        deadline = time.monotonic() + timeout
        header = self._read_exact(codec.HEADER_BYTES, deadline)
        body = self._read_exact(codec.body_length(header), deadline)
        command = self._pending_commands.pop(0)
        self._frames_received += 1
        status, payload = codec.decode_reply(
            command, codec.decode_body(body)
        )
        if status != "ok":
            raise WorkerFailure(payload)
        return payload

    def _read_exact(self, count: int, deadline: float) -> bytes:
        if self._sock is None:
            raise ChannelClosed(
                f"channel to {self._address} is already closed"
            )
        while len(self._buffer) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ChannelTimeout(
                    f"no reply from shard host {self._address} in time"
                )
            self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise ChannelTimeout(
                    f"no reply from shard host {self._address} in time"
                ) from None
            except OSError as exc:
                raise ChannelClosed(
                    f"connection to shard host {self._address} broke "
                    f"({exc})"
                ) from None
            finally:
                if self._sock is not None:
                    self._sock.settimeout(None)
            if not chunk:
                raise ChannelClosed(
                    f"shard host {self._address} closed the connection"
                )
            self._buffer.extend(chunk)
            self._bytes_received += len(chunk)
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        return data

    # -- readiness ----------------------------------------------------

    def waitable(self) -> Any:
        return self._sock

    def has_buffered(self) -> bool:
        return bool(self._buffer)

    def is_alive(self) -> bool:
        return self._sock is not None

    # -- lifecycle ----------------------------------------------------

    def begin_shutdown(self) -> None:
        try:
            self.request("stop")
        except ChannelError:
            pass

    def finish_shutdown(self, timeout: float) -> None:
        try:
            if self._pending_commands:
                self.response(timeout)
        except ChannelError:
            pass
        self.terminate()

    def terminate(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._buffer.clear()
        self._pending_commands.clear()

    def describe(self) -> str:
        return f"tcp shard host {self._address}"

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._bytes_received

    @property
    def frames_sent(self) -> int:
        return self._frames_sent

    @property
    def frames_received(self) -> int:
        return self._frames_received


class TcpServerChannel:
    """Host-side half of a TCP channel (lives in the shard host)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock: Optional[socket.socket] = sock
        self._buffer = bytearray()
        self._last_command: Optional[str] = None
        _set_nodelay(sock)

    def receive(self) -> Tuple[str, Any]:
        header = self._read_exact(codec.HEADER_BYTES)
        body = self._read_exact(codec.body_length(header))
        command, payload = codec.decode_request(codec.decode_body(body))
        self._last_command = command
        return command, payload

    def reply_ok(self, payload: Any) -> None:
        if self._last_command is None:
            raise ChannelError("reply without a received request")
        self._send_frame(
            codec.frame_message(
                codec.encode_reply(self._last_command, payload)
            )
        )

    def reply_error(self, traceback_text: str) -> None:
        self._send_frame(
            codec.frame_message(codec.encode_error_reply(traceback_text))
        )

    def _read_exact(self, count: int) -> bytes:
        if self._sock is None:
            raise ChannelClosed("server channel is closed")
        while len(self._buffer) < count:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise ChannelClosed(
                    f"coordinator connection broke ({exc})"
                ) from None
            if not chunk:
                raise ChannelClosed("coordinator closed the connection")
            self._buffer.extend(chunk)
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        return data

    def _send_frame(self, frame: bytes) -> None:
        if self._sock is None:
            raise ChannelClosed("server channel is closed")
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise ChannelClosed(
                f"coordinator connection broke ({exc})"
            ) from None

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
