"""Constrained top-k helpers (Section 7, Figure 12).

A constrained query monitors only points inside a hyper-rectangle.
The grid algorithms support this natively: the top-k computation
module starts at the cell maximising the function *within* the
constraint region, restricts the traversal to region-intersecting
cells, and the maintenance modules filter arrivals/expirations by
containment (see :func:`repro.algorithms.topk_computation.query_region`
call sites). This module provides the user-facing constructor.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.errors import QueryError
from repro.core.queries import ConstrainedTopKQuery
from repro.core.regions import Rectangle
from repro.core.scoring import PreferenceFunction


def constrained_query(
    function: PreferenceFunction,
    k: int,
    ranges: Sequence[Optional[Tuple[float, float]]],
    label: str = "",
) -> ConstrainedTopKQuery:
    """Build a constrained top-k query from per-dimension ranges.

    Args:
        function: monotone preference function.
        k: result cardinality.
        ranges: one ``(low, high)`` per dimension, or ``None`` for an
            unconstrained dimension (becomes ``[0, 1)``). This mirrors
            the paper's "each constraint is expressed as a range along
            a dimension".
        label: optional display name.

    Example:
        >>> from repro import LinearFunction
        >>> q = constrained_query(LinearFunction([1.0, 2.0]), k=3,
        ...                       ranges=[(0.2, 0.7), None])
        >>> q.constraint.lower, q.constraint.upper
        ((0.2, 0.0), (0.7, 1.0))
    """
    if len(ranges) != function.dims:
        raise QueryError(
            f"{len(ranges)} ranges for a {function.dims}-dimensional function"
        )
    lower = []
    upper = []
    for dim, bounds in enumerate(ranges):
        if bounds is None:
            lower.append(0.0)
            upper.append(1.0)
            continue
        low, high = bounds
        if not (0.0 <= low < high <= 1.0):
            raise QueryError(
                f"range for dimension {dim} must satisfy "
                f"0 <= low < high <= 1, got ({low}, {high})"
            )
        lower.append(low)
        upper.append(high)
    return ConstrainedTopKQuery(
        function=function,
        k=k,
        label=label,
        constraint=Rectangle(tuple(lower), tuple(upper)),
    )
