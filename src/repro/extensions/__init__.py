"""Section 7 extensions: constrained, threshold, and update-stream monitoring.

- Constrained top-k queries run through the ordinary TMA/SMA engines
  (they understand :class:`~repro.core.queries.ConstrainedTopKQuery`
  natively); :mod:`repro.extensions.constrained` adds ergonomic
  constructors and validation.
- :mod:`repro.extensions.threshold` monitors *all* points scoring
  above a user threshold with the influence-list machinery.
- :mod:`repro.extensions.update_model` supports streams with explicit
  (non-FIFO) deletions — TMA applies, SMA is rejected exactly as the
  paper prescribes.
"""

from repro.extensions.constrained import constrained_query
from repro.extensions.threshold import ThresholdMonitor
from repro.extensions.update_model import UpdateStreamMonitor

__all__ = [
    "ThresholdMonitor",
    "UpdateStreamMonitor",
    "constrained_query",
]
