"""Threshold monitoring (Section 7).

"Another interesting type of preference-based retrieval concerns
queries that request monitoring of all the points with score above a
user-specified threshold." The naive method checks every update
against every query; the paper's framework instead registers the query
in the influence lists of exactly the cells whose maxscore exceeds the
threshold — found by a plain list flood from the preference-optimal
corner (visiting order does not matter, so no heap is needed) — and
maintenance only reports insertions/deletions inside those cells.

Unlike top-k queries, the influence region of a threshold query is
*static* (the threshold never moves), so no lazy cleanup machinery is
required: lists are written once at registration and removed at
termination.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.errors import QueryError
from repro.core.queries import QueryTable, ThresholdQuery
from repro.core.results import CycleReport, ResultChange, ResultEntry
from repro.core.stats import OpCounters
from repro.core.tuples import StreamRecord
from repro.core.window import SlidingWindow
from repro.grid.grid import Grid
from repro.grid.traversal import collect_cells_above_threshold


class _ThresholdState:
    __slots__ = ("query", "members", "cells")

    def __init__(self, query: ThresholdQuery) -> None:
        self.query = query
        #: rid -> ResultEntry of every current point above the threshold.
        self.members: Dict[int, ResultEntry] = {}
        self.cells: List = []


class ThresholdMonitor:
    """Continuous monitoring of score-above-threshold queries."""

    def __init__(
        self,
        dims: int,
        window: SlidingWindow,
        cells_per_axis: int = 12,
    ) -> None:
        self.dims = dims
        self.window = window
        self.grid = Grid(dims, cells_per_axis)
        self.counters = OpCounters()
        self.query_table = QueryTable()
        self._states: Dict[int, _ThresholdState] = {}
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def add_query(self, query: ThresholdQuery) -> int:
        """Register; the initial result is every valid point above t."""
        if query.dims != self.dims:
            raise QueryError(
                f"query has {query.dims} dims, monitor has {self.dims}"
            )
        qid = self.query_table.register(query)
        state = _ThresholdState(query)
        for coords in collect_cells_above_threshold(
            self.grid, query.function, query.threshold, self.counters
        ):
            cell = self.grid.get_cell(coords)
            cell.influence.add(qid)
            state.cells.append(coords)
            for record in cell.iter_points():
                score = query.score(record.attrs)
                self.counters.points_scored += 1
                if score > query.threshold:
                    state.members[record.rid] = ResultEntry(score, record)
        self._states[qid] = state
        return qid

    def remove_query(self, qid: int) -> None:
        state = self._states.pop(qid, None)
        if state is None:
            raise QueryError(f"unknown query id {qid}")
        self.query_table.unregister(qid)
        for coords in state.cells:
            cell = self.grid.peek_cell(coords)
            if cell is not None:
                cell.influence.discard(qid)

    def result(self, qid: int) -> List[ResultEntry]:
        """Current matches, best-first."""
        state = self._states.get(qid)
        if state is None:
            raise QueryError(f"unknown query id {qid}")
        return sorted(
            state.members.values(), key=lambda entry: entry.key, reverse=True
        )

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def process(
        self, arrivals: Sequence[StreamRecord], now: Optional[float] = None
    ) -> CycleReport:
        """One cycle: report per-query additions and removals.

        Grid ingestion is batched (``insert_many`` / ``delete_many``,
        one vectorized cell-mapping pass per batch); the per-record
        loops below only walk influence lists.
        """
        if now is None:
            now = max([self._clock] + [r.time for r in arrivals])
        self._clock = now
        for record in arrivals:
            self.window.insert(record)
        expirations = self.window.evict(now)

        started = time.perf_counter()
        changes: Dict[int, ResultChange] = {}

        def change_for(qid: int) -> ResultChange:
            if qid not in changes:
                changes[qid] = ResultChange(qid=qid)
            return changes[qid]

        for record, cell in zip(arrivals, self.grid.insert_many(arrivals)):
            for qid in cell.influence:
                state = self._states.get(qid)
                if state is None:
                    continue
                self.counters.influence_checks += 1
                score = state.query.score(record.attrs)
                if score > state.query.threshold:
                    entry = ResultEntry(score, record)
                    state.members[record.rid] = entry
                    change_for(qid).added.append(entry)

        for record, cell in zip(
            expirations, self.grid.delete_many(expirations)
        ):
            for qid in cell.influence:
                state = self._states.get(qid)
                if state is None:
                    continue
                self.counters.influence_checks += 1
                entry = state.members.pop(record.rid, None)
                if entry is not None:
                    change_for(qid).removed.append(entry)

        for qid, change in changes.items():
            change.top = self.result(qid)
        elapsed = time.perf_counter() - started

        return CycleReport(
            timestamp=now,
            arrivals=len(arrivals),
            expirations=len(expirations),
            changes=changes,
            cpu_seconds=elapsed,
        )

    def queries(self) -> Iterable[ThresholdQuery]:
        return [state.query for state in self._states.values()]
