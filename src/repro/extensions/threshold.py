"""Threshold monitoring (Section 7).

"Another interesting type of preference-based retrieval concerns
queries that request monitoring of all the points with score above a
user-specified threshold." The naive method checks every update
against every query; the paper's framework instead registers the query
in the influence lists of exactly the cells whose maxscore exceeds the
threshold — found by a plain list flood from the preference-optimal
corner — and reports insertions/deletions inside those cells.

That support now lives in the unified facade: *any*
:class:`~repro.core.engine.StreamMonitor` accepts
:class:`~repro.core.queries.ThresholdQuery` through the ordinary
``add_query`` (grid algorithms install the static influence cells;
see :mod:`repro.algorithms.base`), so threshold, top-k and constrained
queries share one registration, accounting, sharding and notification
path. :class:`ThresholdMonitor` remains as a thin shim over a
dedicated facade instance, preserving the original constructor and
attribute surface (``grid``, ``counters``, ``query_table``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.engine import StreamMonitor
from repro.core.handles import QueryHandle
from repro.core.queries import ThresholdQuery
from repro.core.results import CycleReport, ResultEntry
from repro.core.tuples import StreamRecord
from repro.core.window import SlidingWindow


class ThresholdMonitor:
    """Continuous monitoring of score-above-threshold queries.

    Thin shim over a TMA-backed :class:`~repro.core.engine.StreamMonitor`
    whose queries happen to all be threshold queries; mixing in top-k
    queries is possible but better done on a facade you construct
    yourself.
    """

    def __init__(
        self,
        dims: int,
        window: SlidingWindow,
        cells_per_axis: int = 12,
    ) -> None:
        self.monitor = StreamMonitor(
            dims,
            window,
            algorithm="tma",
            cells_per_axis=cells_per_axis,
        )
        self.dims = dims

    # -- delegated surface --------------------------------------------

    @property
    def window(self) -> SlidingWindow:
        return self.monitor.window

    @property
    def grid(self):
        return self.monitor.algorithm.grid

    @property
    def counters(self):
        return self.monitor.counters

    @property
    def query_table(self):
        return self.monitor.query_table

    def add_query(self, query: ThresholdQuery) -> QueryHandle:
        """Register; the initial result is every valid point above t.
        Returns an int-like :class:`~repro.core.handles.QueryHandle`."""
        return self.monitor.add_query(query)

    def remove_query(self, qid) -> None:
        self.monitor.remove_query(qid)

    def result(self, qid) -> List[ResultEntry]:
        """Current matches, best-first."""
        return self.monitor.result(qid)

    def process(
        self, arrivals: Sequence[StreamRecord], now=None
    ) -> CycleReport:
        """One cycle: report per-query additions and removals."""
        return self.monitor.process(arrivals, now=now)

    def queries(self) -> Iterable[ThresholdQuery]:
        return list(self.monitor.query_table)
