"""Update-stream monitoring: explicit deletions (Section 7).

"In case of streams that contain explicit deletions, the data no
longer expire in a first-in-first-out manner. [...] TMA applies
directly to this scenario [...] On the other hand, the skyband
computation and maintenance of SMA is not possible because the expiry
order of the tuples is not known in advance."

The machinery lives in the unified facade now:
``StreamMonitor(dims, stream_model="update")`` runs the
explicit-deletion model directly — no sliding window, whole-batch
validation, SMA refused at construction — with the full handle /
subscription surface. :class:`UpdateStreamMonitor` remains as a thin
shim preserving the original constructor and
``process(insertions, deletions)`` signature.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.algorithms import MonitorAlgorithm
from repro.core.engine import StreamMonitor
from repro.core.results import CycleReport
from repro.core.tuples import StreamRecord


class UpdateStreamMonitor(StreamMonitor):
    """Top-k monitoring over a stream with explicit deletions.

    Thin shim over ``StreamMonitor(..., stream_model="update")`` — the
    positional ``process(insertions, deletions)`` signature is the
    only difference.
    """

    def __init__(
        self,
        dims: int,
        algorithm: Union[str, MonitorAlgorithm] = "tma",
        cells_per_axis: Optional[int] = None,
        **algorithm_options,
    ) -> None:
        super().__init__(
            dims,
            window=None,
            algorithm=algorithm,
            cells_per_axis=cells_per_axis,
            stream_model="update",
            **algorithm_options,
        )

    def process(  # type: ignore[override]
        self,
        insertions: Sequence[StreamRecord],
        deletions: Sequence[StreamRecord] = (),
        now: Optional[float] = None,
    ) -> CycleReport:
        """Apply one batch of explicit insertions and deletions.

        The whole batch is validated *before* anything mutates: a bad
        record still raises its per-record
        :class:`~repro.core.errors.StreamError`, but the live set is
        never left half-applied. A record inserted and deleted in the
        same batch is legal (net effect: absent).
        """
        return super().process(insertions, now=now, deletions=list(deletions))
