"""Update-stream monitoring: explicit deletions (Section 7).

"In case of streams that contain explicit deletions, the data no
longer expire in a first-in-first-out manner. [...] TMA applies
directly to this scenario [...] On the other hand, the skyband
computation and maintenance of SMA is not possible because the expiry
order of the tuples is not known in advance."

:class:`UpdateStreamMonitor` therefore wraps TMA (or the brute-force
oracle for testing) and refuses SMA at construction. There is no
sliding window: the live set is exactly the inserted-minus-deleted
records, tracked here so deletions can be validated and the paper's
hash-based point lists exercised (our cell point lists are dicts, so
random deletion is O(1) as Section 7 requires).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.algorithms import MonitorAlgorithm, make_algorithm
from repro.algorithms.sma import SkybandMonitoringAlgorithm
from repro.core.errors import StreamError
from repro.core.queries import QueryTable, TopKQuery
from repro.core.results import CycleReport, ResultChange, ResultEntry
from repro.core.tuples import StreamRecord


class UpdateStreamMonitor:
    """Top-k monitoring over a stream with explicit deletions."""

    def __init__(
        self,
        dims: int,
        algorithm: Union[str, MonitorAlgorithm] = "tma",
        cells_per_axis: Optional[int] = None,
        **algorithm_options,
    ) -> None:
        self.dims = dims
        if isinstance(algorithm, MonitorAlgorithm):
            self.algorithm = algorithm
        else:
            self.algorithm = make_algorithm(
                algorithm, dims, cells_per_axis, **algorithm_options
            )
        if isinstance(self.algorithm, SkybandMonitoringAlgorithm):
            raise StreamError(
                "SMA cannot monitor update streams: the skyband reduction "
                "requires the expiry order to be known in advance "
                "(paper Section 7); use TMA instead"
            )
        self.query_table = QueryTable()
        self.cycle_seconds: List[float] = []
        self._live: Dict[int, StreamRecord] = {}
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def add_query(self, query: TopKQuery) -> int:
        qid = self.query_table.register(query)
        self.algorithm.register(query)
        return qid

    def remove_query(self, qid: int) -> None:
        self.query_table.unregister(qid)
        self.algorithm.unregister(qid)

    def result(self, qid: int) -> List[ResultEntry]:
        return self.algorithm.current_result(qid)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return len(self._live)

    def process(
        self,
        insertions: Sequence[StreamRecord],
        deletions: Sequence[StreamRecord],
        now: Optional[float] = None,
    ) -> CycleReport:
        """Apply one batch of explicit insertions and deletions.

        The whole batch is validated *before* anything mutates: a bad
        record still raises its per-record :class:`StreamError`, but
        the live set is no longer left half-applied, and the batch then
        flows to the algorithm as one cycle — whose grid ingestion runs
        through the batched ``Grid.insert_many`` / ``delete_many``
        paths, not record-at-a-time inserts. A record inserted and
        deleted in the same batch is legal (net effect: absent), as
        under the previous insert-all-then-delete-all order.
        """
        inserted: Set[int] = set()
        for record in insertions:
            if record.rid in self._live or record.rid in inserted:
                raise StreamError(f"record {record.rid} inserted twice")
            inserted.add(record.rid)
        deleted: Set[int] = set()
        for record in deletions:
            known = record.rid in self._live or record.rid in inserted
            if not known or record.rid in deleted:
                raise StreamError(
                    f"deletion of unknown/already-deleted record {record.rid}"
                )
            deleted.add(record.rid)
        for record in insertions:
            self._live[record.rid] = record
        for record in deletions:
            self._live.pop(record.rid, None)
        if now is None:
            now = max(
                [self._clock]
                + [record.time for record in insertions]
            )
        self._clock = now

        started = time.perf_counter()
        changes: Dict[int, ResultChange] = self.algorithm.process_cycle(
            list(insertions), list(deletions)
        )
        elapsed = time.perf_counter() - started
        self.cycle_seconds.append(elapsed)
        return CycleReport(
            timestamp=now,
            arrivals=len(insertions),
            expirations=len(deletions),
            changes=changes,
            cpu_seconds=elapsed,
        )
