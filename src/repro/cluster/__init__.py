"""repro.cluster — running shards on other machines.

The distributed tier above the transport layer: a remote shard host
process (:mod:`repro.cluster.shard`, ``python -m repro.cluster.shard
--listen HOST:PORT``) plus :func:`local_shard_hosts`, a context
manager that brings a pool of loopback hosts up in subprocesses — the
harness the remote-parity tests, the CI multi-node smoke job, and
``bench --shards tcp:N`` share.

Point a monitor at running hosts with::

    StreamMonitor(..., algorithm="tma",
                  shards=["10.0.0.7:7071", "10.0.0.8:7071"])

Results are bitwise-identical to ``shards=N`` (pipe workers) and to a
single-process run; see ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import contextlib
import os
import subprocess
import sys
from typing import Iterator, List, Optional

from repro.core.errors import StreamError

_BANNER_PREFIX = "repro-shard listening on "


def _repro_src_root() -> str:
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    return os.path.dirname(package_dir)


@contextlib.contextmanager
def local_shard_hosts(
    count: int,
    *,
    python: Optional[str] = None,
    host: str = "127.0.0.1",
    once: bool = True,
) -> Iterator[List[str]]:
    """Run ``count`` loopback shard hosts for the duration of a block.

    Each host is a ``python -m repro.cluster.shard --listen host:0``
    subprocess; the context yields their ``"host:port"`` addresses
    (parsed from the startup banner) and tears every host down on
    exit. With ``once`` (the default) each host gets ``--once`` — it
    exits with its first session, so an orphaned host can never
    linger; pass ``once=False`` when several monitors will connect in
    sequence (the bench's ``--shards tcp:N`` leg runs one session per
    benchmarked algorithm).
    """
    if count < 1:
        raise ValueError(f"need at least one shard host, got {count}")
    interpreter = python or sys.executable
    env = dict(os.environ)
    src_root = _repro_src_root()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    procs: List[subprocess.Popen] = []
    addresses: List[str] = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                [
                    interpreter,
                    "-m",
                    "repro.cluster.shard",
                    "--listen",
                    f"{host}:0",
                ]
                + (["--once"] if once else []),
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            procs.append(proc)
            addresses.append(_read_banner(proc))
        yield addresses
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=5)
            if proc.stdout is not None:
                proc.stdout.close()


def _read_banner(proc: subprocess.Popen) -> str:
    """Parse one host's startup banner into its ``host:port`` address."""
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if not line:
        code = proc.poll()
        raise StreamError(
            f"shard host exited (code {code}) before announcing its "
            "address"
        )
    text = line.strip()
    if not text.startswith(_BANNER_PREFIX):
        raise StreamError(
            f"unexpected shard host banner: {text!r}"
        )
    return text[len(_BANNER_PREFIX):]


__all__ = ["local_shard_hosts"]
