"""Remote shard host: ``python -m repro.cluster.shard --listen HOST:PORT``.

One host process serves one shard session at a time: a coordinator
connects (``TcpChannel.connect``), sends the ``configure`` handshake
(protocol revision, algorithm name, dims, grid granularity, factory
options), and the host builds the per-shard algorithm and enters the
same serve loop a pipe worker runs
(:func:`repro.parallel.worker.serve_shard`) — the transport is the
only difference between a local worker and a remote shard. When the
session ends (``stop`` or coordinator disconnect) the algorithm is
discarded and the host listens again, so one long-running host can
serve many successive monitors.

Options:

``--listen HOST:PORT``
    Bind address. Port ``0`` picks a free port; the actual endpoint is
    printed as ``repro-shard listening on HOST:PORT`` (and flushed) so
    wrappers can parse it.
``--once``
    Exit after the first session ends instead of re-listening —
    what :func:`local_shard_hosts` and the CI smoke job use so hosts
    can never outlive their test.
``--idle-timeout SECONDS``
    Exit when no coordinator connects for this long (default: wait
    forever).

A session failure (malformed handshake, unknown algorithm) is
reported to the coordinator as an error reply where possible and ends
only that session, never the host.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import traceback
from typing import Optional

from repro.service.protocol import ProtocolError
from repro.transport.base import ChannelClosed, parse_address
from repro.transport.codec import SHARD_PROTOCOL_VERSION
from repro.transport.tcp import TcpServerChannel


def serve_session(sock: socket.socket) -> None:
    """Serve one coordinator session on an accepted socket."""
    channel = TcpServerChannel(sock)
    try:
        try:
            command, payload = channel.receive()
        except ProtocolError as exc:
            channel.reply_error(f"ProtocolError: {exc}")
            return
        if command != "configure":
            channel.reply_error(
                f"ProtocolError: expected a configure handshake, "
                f"got {command!r}"
            )
            return
        revision = payload.get("protocol")
        if revision != SHARD_PROTOCOL_VERSION:
            channel.reply_error(
                f"ProtocolError: coordinator speaks shard protocol "
                f"{revision!r}, this host speaks "
                f"{SHARD_PROTOCOL_VERSION}"
            )
            return
        try:
            algo = _build_algorithm(payload)
        except Exception:
            channel.reply_error(traceback.format_exc())
            return
        channel.reply_ok(
            {
                "protocol": SHARD_PROTOCOL_VERSION,
                "algorithm": algo.name,
                "pid": os.getpid(),
            }
        )
        from repro.parallel.worker import serve_shard

        serve_shard(channel, algo)
    except ChannelClosed:
        pass
    finally:
        channel.close()


def _build_algorithm(payload: dict):
    from repro.algorithms import make_algorithm
    from repro.parallel.worker import bind_worker_observability

    options = dict(payload.get("options") or {})
    obs = options.pop("_obs", None)
    cells = payload.get("cells_per_axis")
    algo = make_algorithm(
        str(payload["algorithm"]),
        int(payload["dims"]),
        None if cells is None else int(cells),
        **options,
    )
    bind_worker_observability(algo, obs)
    return algo


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.shard",
        description="Host one remote shard of a sharded StreamMonitor.",
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="bind address (port 0 picks a free port)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="exit after the first session ends",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit when no coordinator connects for this long",
    )
    args = parser.parse_args(argv)
    host, port = parse_address(args.listen)
    listener = socket.create_server(
        (host, port), backlog=4, reuse_port=False
    )
    bound_host, bound_port = listener.getsockname()[:2]
    print(
        f"repro-shard listening on {bound_host}:{bound_port}",
        flush=True,
    )
    try:
        while True:
            listener.settimeout(args.idle_timeout)
            try:
                conn, _peer = listener.accept()
            except socket.timeout:
                print("repro-shard idle timeout, exiting", flush=True)
                return 0
            serve_session(conn)
            if args.once:
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 130
    finally:
        listener.close()


if __name__ == "__main__":  # pragma: no cover - exercised in subprocess
    sys.exit(main())
