"""Scaling evidence: the TSL gap widens toward the paper's scale.

The paper benchmarks at N=1M, Q=1K, where TSL pays (i) r·Q score
evaluations per cycle (no influence lists to narrow the scope) and
(ii) 2·r·d sorted-list updates each costing O(N). Both costs grow with
the workload while the grid methods' per-update work stays bounded by
the influence-region occupancy — so the paper's order-of-magnitude gap
is a large-scale phenomenon. This bench sweeps N (with r = N/100 and Q
fixed) and shows TSL consistently behind SMA with an *absolute*
per-run gap that grows with N.

Note on the assertion shape: before the batch-scoring kernels
(PR 1) the TSL/SMA *ratio* itself grew ~1.5× across this sweep,
because TSL's dominant costs were interpreted per-record work.
Vectorization compresses exactly those costs — r·Q scoring collapses
into Q kernel calls and the 2·r·d sorted-list updates into d batched
merges — so the ratio now grows far more slowly at these (scaled-down)
cardinalities even though TSL's asymptotic disadvantage is unchanged.
The structural claims that survive any constant-factor change are the
ones asserted: TSL stays well behind SMA at every point, and the
absolute gap keeps widening with N.
"""

from repro.bench.reporting import format_table
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

CARDINALITIES = [2_000, 8_000, 24_000, 48_000]


def sweep():
    ratios = []
    gaps = []
    rows = []
    for n in CARDINALITIES:
        spec = scaled_defaults(
            n=n,
            rate=max(1, n // 100),
            num_queries=40,
            cycles=6,
            distribution="ind",
        )
        runs = compare_algorithms(spec, ("tsl", "sma"))
        tsl = runs["tsl"].total_seconds
        sma = runs["sma"].total_seconds
        ratios.append(tsl / max(sma, 1e-9))
        gaps.append(tsl - sma)
        rows.append([n, f"{tsl:.4f}", f"{sma:.4f}", f"{ratios[-1]:.1f}x"])
    return ratios, gaps, rows


def test_tsl_gap_widens_with_scale(benchmark):
    ratios, gaps, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Scaling: TSL/SMA total-time ratio vs N (IND, Q=40) ==")
    print(
        format_table(["N", "TSL [s]", "SMA [s]", "TSL/SMA"], rows)
    )
    # TSL trails SMA at every cardinality in the sweep ...
    assert all(ratio > 1.5 for ratio in ratios)
    # ... and the absolute gap keeps growing with N — the scaled-down
    # signature of the paper's order-of-magnitude separation at N=1M.
    assert gaps[-1] > gaps[0] * 2.0
