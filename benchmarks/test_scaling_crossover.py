"""Scaling evidence: the TSL gap widens toward the paper's scale.

The paper benchmarks at N=1M, Q=1K, where TSL pays (i) r·Q score
evaluations per cycle (no influence lists to narrow the scope) and
(ii) 2·r·d sorted-list updates each costing O(N). Both costs grow with
the workload while the grid methods' per-update work stays bounded by
the influence-region occupancy — so the paper's order-of-magnitude gap
is a large-scale phenomenon. This bench sweeps N (with r = N/100 and Q
fixed) and shows the TSL/SMA total-time ratio increasing, which is the
strongest statement a scaled-down reproduction can verify directly:
extrapolated to N=1M the curve passes the paper's reported 10×.
"""

from repro.bench.reporting import format_table
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

CARDINALITIES = [2_000, 8_000, 24_000, 48_000]


def sweep():
    ratios = []
    rows = []
    for n in CARDINALITIES:
        spec = scaled_defaults(
            n=n,
            rate=max(1, n // 100),
            num_queries=40,
            cycles=6,
            distribution="ind",
        )
        runs = compare_algorithms(spec, ("tsl", "sma"))
        tsl = runs["tsl"].total_seconds
        sma = runs["sma"].total_seconds
        ratios.append(tsl / max(sma, 1e-9))
        rows.append([n, f"{tsl:.4f}", f"{sma:.4f}", f"{ratios[-1]:.1f}x"])
    return ratios, rows


def test_tsl_gap_widens_with_scale(benchmark):
    ratios, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Scaling: TSL/SMA total-time ratio vs N (IND, Q=40) ==")
    print(
        format_table(["N", "TSL [s]", "SMA [s]", "TSL/SMA"], rows)
    )
    # The gap grows monotonically in the sweep's span ...
    assert ratios[-1] > ratios[0] * 1.5
    # ... and already exceeds the paper's order-of-magnitude territory
    # well before N=1M.
    assert ratios[-1] > 4.0
