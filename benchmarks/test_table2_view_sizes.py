"""Table 2: average view (TSL) / skyband (SMA) size per query.

The paper's measurement: TSL must over-provision each materialized
view to kmax entries to avoid constant refills, while SMA's skyband
self-prunes to barely above k — "SMA maintains very few extra points"
and always fewer than TSL.

Paper values (IND):  k: 1, 5, 10, 20, 50, 100
                   TSL: 3.3, 8.6, 17.1, 26.7, 63.0, 113.2
                   SMA: 1.1, 5.9, 11.2, 21.6, 53.3, 104.6
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.bench.workloads import scaled_defaults

KS = [1, 5, 10, 20, 50]

PAPER = {
    "ind": {
        "tsl": {1: 3.3, 5: 8.6, 10: 17.1, 20: 26.7, 50: 63.0},
        "sma": {1: 1.1, 5: 5.9, 10: 11.2, 20: 21.6, 50: 53.3},
    },
    "ant": {
        "tsl": {1: 3.1, 5: 8.4, 10: 17.2, 20: 26.9, 50: 64.4},
        "sma": {1: 1.1, 5: 5.9, 10: 11.5, 20: 22.4, 50: 54.4},
    },
}


def sweep(distribution: str):
    sizes = {"tsl": [], "sma": []}
    for k in KS:
        spec = scaled_defaults(
            n=8_000,
            rate=80,
            num_queries=12,
            cycles=8,
            k=k,
            distribution=distribution,
        )
        for name in ("tsl", "sma"):
            run = run_workload(spec, name, state_size_probes=8)
            sizes[name].append(run.mean_state_size)
    return sizes


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_table2_view_and_skyband_sizes(benchmark, distribution):
    sizes = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    rows = []
    for index, k in enumerate(KS):
        rows.append(
            [
                k,
                f"{PAPER[distribution]['tsl'][k]:.1f}",
                f"{sizes['tsl'][index]:.1f}",
                f"{PAPER[distribution]['sma'][k]:.1f}",
                f"{sizes['sma'][index]:.1f}",
            ]
        )
    print(
        f"\n== Table 2 ({distribution.upper()}): avg view/skyband size "
        f"per query ==")
    print(
        format_table(
            ["k", "TSL paper", "TSL ours", "SMA paper", "SMA ours"], rows
        )
    )
    for index, k in enumerate(KS):
        tsl = sizes["tsl"][index]
        sma = sizes["sma"][index]
        # The paper's relations: k <= SMA skyband < TSL view <= kmax,
        # with the skyband only slightly above k.
        assert k <= sma + 1e-9, f"k={k}: skyband {sma}"
        assert sma < tsl, f"k={k}: SMA {sma} !< TSL {tsl}"
        assert sma < 2 * k + 4, f"k={k}: skyband too fat: {sma}"
