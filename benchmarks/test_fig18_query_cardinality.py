"""Figure 18: CPU time versus the number of running queries Q.

Paper shape: "the running time of all methods scales linearly with Q";
relative performance unchanged (SMA ≤ TMA ≪ TSL).
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

QUERY_COUNTS = [5, 10, 20, 40, 80]
ALGOS = ("tsl", "tma", "sma")


def sweep(distribution: str):
    series = {name: [] for name in ALGOS}
    checks = {name: [] for name in ALGOS}
    for q in QUERY_COUNTS:
        spec = scaled_defaults(
            n=8_000,
            rate=80,
            num_queries=q,
            cycles=6,
            distribution=distribution,
        )
        runs = compare_algorithms(spec, ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
            checks[name].append(runs[name].counters.influence_checks)
    return series, checks


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_fig18_cpu_vs_query_cardinality(benchmark, distribution):
    series, checks = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    label = "a" if distribution == "ind" else "b"
    print_series(
        f"Figure 18({label}): CPU time vs Q ({distribution.upper()})",
        "Q",
        QUERY_COUNTS,
        {name.upper(): series[name] for name in ALGOS},
    )
    for name in ALGOS:
        assert series[name][-1] > series[name][0], name
        # Roughly linear growth in Q on top of each method's
        # Q-independent floor (TSL: sorted-list maintenance; TMA/SMA:
        # grid insertion/deletion per arrival).
        growth = series[name][-1] / max(series[name][0], 1e-9)
        assert 1.2 < growth < 100.0, f"{name}: {growth}"
    # TSL's per-arrival work is exactly r·Q checks per cycle (it has
    # no influence lists to narrow the scope) — the structural reason
    # its Q-scaling line sits highest in the paper's figure.
    spec_cycles = 6
    for index, q in enumerate(QUERY_COUNTS):
        assert checks["tsl"][index] == 80 * q * spec_cycles
        assert checks["tma"][index] < checks["tsl"][index]
        assert checks["sma"][index] < checks["tsl"][index]
    if distribution == "ind":
        assert sum(series["sma"]) < sum(series["tsl"])
        assert sum(series["tma"]) < sum(series["tsl"])
