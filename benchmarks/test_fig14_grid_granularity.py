"""Figure 14: CPU time and space versus grid granularity (IND).

The paper sweeps 5^4..15^4 cells at N=1M and finds ~12^4 optimal: too
fine a grid wastes heap operations on empty cells, too coarse a grid
scans points outside influence regions; space grows monotonically with
granularity (book-keeping). The same trade-off appears at our scaled N
with the optimum shifted to the occupancy-equivalent granularity.
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import run_workload
from repro.bench.workloads import scaled_defaults

GRANULARITIES = [2, 3, 4, 5, 6, 12]


@pytest.fixture(scope="module")
def sweep():
    spec = scaled_defaults(cycles=8)
    results = {"tma": [], "sma": []}
    spaces = {"tma": [], "sma": []}
    for per_axis in GRANULARITIES:
        for algorithm in ("tma", "sma"):
            run = run_workload(
                spec.with_(cells_per_axis=per_axis), algorithm
            )
            results[algorithm].append(run.total_seconds)
            spaces[algorithm].append(run.space.total_mb)
    return results, spaces


def test_fig14a_cpu_vs_granularity(benchmark, sweep):
    results, _ = sweep
    benchmark.pedantic(
        lambda: run_workload(
            scaled_defaults(cycles=8).with_(cells_per_axis=4), "sma"
        ),
        rounds=1,
        iterations=1,
    )
    print_series(
        "Figure 14(a): CPU time vs grid granularity (IND, d=4)",
        "cells/axis",
        GRANULARITIES,
        {"TMA": results["tma"], "SMA": results["sma"]},
    )
    # The finest grid must not be the optimum (heap overhead on empty
    # cells) — the paper's interior-optimum shape.
    for algorithm in ("tma", "sma"):
        series = results[algorithm]
        best = min(range(len(series)), key=series.__getitem__)
        assert best != len(GRANULARITIES) - 1, (
            f"{algorithm}: finest grid unexpectedly optimal: {series}"
        )


def test_fig14b_space_vs_granularity(benchmark, sweep):
    _, spaces = sweep
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_series(
        "Figure 14(b): space vs grid granularity (IND, d=4)",
        "cells/axis",
        GRANULARITIES,
        {"TMA": spaces["tma"], "SMA": spaces["sma"]},
        unit="MB",
    )
    # Space grows with granularity (influence-list book-keeping), and
    # SMA stores at least as much as TMA (skyband extras).
    for algorithm in ("tma", "sma"):
        assert spaces[algorithm][-1] > spaces[algorithm][0]
    assert all(
        sma >= tma * 0.99
        for tma, sma in zip(spaces["tma"], spaces["sma"])
    )
