"""Ablation: measured operation counters versus the Section 6 model.

The paper's analysis makes quantitative predictions in terms of
machine-independent operations. This bench checks them against the
implementation's counters — the strongest form of "the shape holds"
available without the authors' hardware:

1. Pr_rec(measured, TMA) ≤ 1 − (1 − r/N)^k, and grows with k;
2. SMA recomputes (much) less often than TMA;
3. the cells processed per from-scratch computation track the model's
   C = ⌈k / (N·δ^d)⌉ within a small constant factor;
4. SMA's skyband stays near k entries under uniform data (the
   assumption behind T_SMA's k²·r/N term).
"""

from repro.analysis.cost_model import CostModel, WorkloadParameters
from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.bench.workloads import scaled_defaults

KS = [5, 10, 20, 50]
N, RATE, QUERIES, CYCLES = 8_000, 80, 12, 10


def sweep():
    rows = []
    for k in KS:
        spec = scaled_defaults(
            n=N, rate=RATE, num_queries=QUERIES, cycles=CYCLES, k=k
        )
        model = CostModel(
            WorkloadParameters(
                n=N,
                r=RATE,
                d=spec.dims,
                k=k,
                q=QUERIES,
                cells_per_axis=spec.grid_cells_per_axis(),
            )
        )
        tma = run_workload(spec, "tma")
        sma = run_workload(spec, "sma")
        cells_per_comp = tma.counters.cells_processed / max(
            1, tma.counters.topk_computations
        )
        rows.append(
            {
                "k": k,
                "prrec_bound": model.recomputation_probability(),
                "prrec_tma": tma.recomputation_rate,
                "prrec_sma": sma.recomputation_rate,
                "c_model": model.influence_cells(),
                "c_measured": cells_per_comp,
                "skyband": sma.mean_state_size,
            }
        )
    return rows


def test_cost_model_predictions(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n== Section 6 model vs measured (IND, N=8000, r=80) ==")
    print(
        format_table(
            [
                "k",
                "Pr_rec bound",
                "Pr_rec TMA",
                "Pr_rec SMA",
                "C model",
                "C measured",
                "skyband",
            ],
            [
                [
                    row["k"],
                    f"{row['prrec_bound']:.3f}",
                    f"{row['prrec_tma']:.3f}",
                    f"{row['prrec_sma']:.3f}",
                    f"{row['c_model']:.0f}",
                    f"{row['c_measured']:.1f}",
                    f"{row['skyband']:.1f}",
                ]
                for row in rows
            ],
        )
    )
    for row in rows:
        # (1) the measured Pr_rec respects the analytical bound
        assert row["prrec_tma"] <= row["prrec_bound"] + 0.02, row
        # (2) SMA recomputes less often than TMA
        assert row["prrec_sma"] <= row["prrec_tma"] + 1e-9, row
        # (4) skyband hovers near k under uniform data
        assert row["k"] <= row["skyband"] <= 2 * row["k"] + 4, row
    # (1b) Pr_rec grows with k
    assert rows[-1]["prrec_tma"] > rows[0]["prrec_tma"]
    # (3) C: the model approximates the influence region by its volume
    # k/N, which undercounts the *boundary* cells a thin region
    # touches — so compare with a volume factor plus an additive
    # boundary allowance, and check the growth trend it predicts.
    for row in rows:
        assert row["c_measured"] <= 8 * row["c_model"] + 24, row
    assert rows[-1]["c_measured"] > rows[0]["c_measured"]


def test_sma_saves_recomputation_work(benchmark):
    """The headline mechanism, isolated: identical workloads, count
    the from-scratch computations each policy performs."""

    def measure():
        spec = scaled_defaults(
            n=N, rate=RATE, num_queries=QUERIES, cycles=CYCLES, k=20
        )
        return {
            name: run_workload(spec, name).counters.recomputations
            for name in ("tma", "sma")
        }

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nFrom-scratch computations over {CYCLES} cycles x "
        f"{QUERIES} queries: TMA={counts['tma']} SMA={counts['sma']}"
    )
    assert counts["sma"] < counts["tma"]
