"""Figure 21: CPU time versus d for non-linear preference functions.

The paper repeats the Figure 15 experiment with
f(p) = Π (aᵢ + p.xᵢ)  (Figures 21 a/b) and
f(p) = Σ aᵢ·p.xᵢ²     (Figures 21 c/d)
and finds "the relative performance of the algorithms is similar to
the case of linear functions, illustrating the generality of our
methods".
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

DIMS = [2, 3, 4, 5]
ALGOS = ("tsl", "tma", "sma")

PANELS = {
    ("product", "ind"): "a",
    ("product", "ant"): "b",
    ("quadratic", "ind"): "c",
    ("quadratic", "ant"): "d",
}


def sweep(family: str, distribution: str):
    series = {name: [] for name in ALGOS}
    checks = {name: [] for name in ALGOS}
    for dims in DIMS:
        spec = scaled_defaults(
            n=10_000,
            rate=100,
            num_queries=40,
            cycles=6,
            dims=dims,
            distribution=distribution,
            function_family=family,
        )
        runs = compare_algorithms(spec, ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
            checks[name].append(runs[name].counters.influence_checks)
    return series, checks


@pytest.mark.parametrize(
    "family,distribution",
    [
        ("product", "ind"),
        ("product", "ant"),
        ("quadratic", "ind"),
        ("quadratic", "ant"),
    ],
)
def test_fig21_nonlinear_functions(benchmark, family, distribution):
    series, checks = benchmark.pedantic(
        lambda: sweep(family, distribution), rounds=1, iterations=1
    )
    panel = PANELS[(family, distribution)]
    formula = (
        "prod(ai+xi)" if family == "product" else "sum(ai*xi^2)"
    )
    print_series(
        f"Figure 21({panel}): CPU vs d, f={formula} "
        f"({distribution.upper()})",
        "d",
        DIMS,
        {name.upper(): series[name] for name in ALGOS},
    )
    # Same relative performance as the linear case (Figure 15): the
    # full time ordering on IND, the scale-robust parts on ANT — both
    # restricted to d <= 4 for the same high-dimensional small-scale
    # caveat documented in EXPERIMENTS.md.
    asserted = [i for i, dims in enumerate(DIMS) if dims <= 4]
    for index in asserted:
        assert checks["tma"][index] < checks["tsl"][index], f"d={DIMS[index]}"
        assert checks["sma"][index] < checks["tsl"][index], f"d={DIMS[index]}"
    if distribution == "ind":
        tsl_total = sum(series["tsl"][i] for i in asserted)
        assert sum(series["tma"][i] for i in asserted) < tsl_total
        assert sum(series["sma"][i] for i in asserted) < tsl_total
    else:
        assert sum(series["sma"]) <= sum(series["tma"]) * 1.05
