"""Figure 17: CPU time versus arrival rate r (0.1% .. 10% of N/cycle).

Paper shape: all methods degrade with r; the grid methods show better
resilience because TSL pays d sorted-list updates per arrival plus a
score evaluation against every query, while TMA/SMA touch only the
queries whose influence cells receive the update.
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

N = 10_000
RATES = [10, 50, 100, 500, 1_000]  # 0.1% .. 10% of N
ALGOS = ("tsl", "tma", "sma")


def sweep(distribution: str):
    series = {name: [] for name in ALGOS}
    for rate in RATES:
        spec = scaled_defaults(
            n=N,
            rate=rate,
            num_queries=12,
            cycles=6,
            distribution=distribution,
        )
        runs = compare_algorithms(spec, ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
    return series


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_fig17_cpu_vs_arrival_rate(benchmark, distribution):
    series = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    label = "a" if distribution == "ind" else "b"
    print_series(
        f"Figure 17({label}): CPU time vs r ({distribution.upper()}, "
        f"N={N})",
        "r",
        RATES,
        {name.upper(): series[name] for name in ALGOS},
    )
    for name in ALGOS:
        # Cost increases with the update rate ...
        assert series[name][-1] > series[name][0], name
    if distribution == "ind":
        # ... and the monitoring algorithms stay ahead of TSL
        # (sweep aggregates; single points are noisy).
        assert sum(series["tma"]) < sum(series["tsl"])
        assert sum(series["sma"]) < sum(series["tsl"])
    else:
        # ANT at sub-paper scale: the scale-robust ordering (see
        # EXPERIMENTS.md): SMA outperforms TMA, and markedly so at
        # high rates — the paper highlights exactly this panel as
        # where "SMA performs significantly better than TMA".
        assert series["sma"][-1] < series["tma"][-1]
