"""TSL kmax fine-tuning (Section 8, text before Figure 15).

The paper tunes kmax per k "for fairness": small kmax means views
underflow constantly and TA refills dominate; large kmax means every
view update costs more and refills recompute more entries. The paper's
optima were kmax = (4, 10, 20, 30, 70, 120) for k = (1, 5, 10, 20, 50,
100). This bench sweeps the kmax multiplier at fixed k and shows the
refill/insert trade-off that creates the interior optimum.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import run_workload
from repro.bench.workloads import scaled_defaults

K = 10
MULTIPLIERS = [1.0, 1.5, 2.0, 3.0, 6.0]


def run_tsl(kmax=None, adaptive=False):
    from repro.algorithms.tsl import ThresholdSortedListAlgorithm
    from repro.core.engine import StreamMonitor
    from repro.core.window import CountBasedWindow
    from repro.streams.generators import make_distribution
    from repro.streams.stream import StreamDriver

    spec = scaled_defaults(n=8_000, rate=80, num_queries=12, cycles=10, k=K)
    driver = StreamDriver(
        make_distribution(spec.distribution, spec.dims),
        spec.rate,
        seed=spec.seed,
    )
    if adaptive:
        # Start from the degenerate kmax=k so the dynamic policy has
        # to discover the slack by itself (its whole selling point).
        kmax_fn = lambda k: k  # noqa: E731
    elif kmax is not None:
        kmax_fn = lambda k, km=kmax: km  # noqa: E731
    else:
        kmax_fn = None
    algorithm = ThresholdSortedListAlgorithm(
        spec.dims,
        kmax_for=kmax_fn,
        adaptive_kmax=adaptive,
    )
    monitor = StreamMonitor(
        spec.dims, CountBasedWindow(spec.n), algorithm=algorithm
    )
    monitor.process(driver.warmup(spec.n))
    for query in spec.make_queries():
        monitor.add_query(query)
    monitor.cycle_seconds.clear()
    monitor.counters.reset()
    for batch in driver.batches(spec.cycles):
        monitor.process(batch)
    kmaxes = [state.kmax for state in algorithm._states.values()]
    return {
        "kmax": "adaptive" if adaptive else kmax,
        "seconds": monitor.total_cpu_seconds,
        "refills": monitor.counters.view_refills,
        "view_inserts": monitor.counters.view_insertions,
        "final_kmax": f"{min(kmaxes)}..{max(kmaxes)}",
    }


def sweep():
    rows = [
        run_tsl(kmax=max(K, int(round(K * multiplier))))
        for multiplier in MULTIPLIERS
    ]
    rows.append(run_tsl(adaptive=True))
    return rows


def test_tsl_kmax_tradeoff(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n== TSL kmax tuning (k={K}) ==")
    print(
        format_table(
            ["kmax", "CPU [s]", "TA refills", "view inserts", "kmax range"],
            [
                [
                    row["kmax"],
                    f"{row['seconds']:.4f}",
                    row["refills"],
                    row["view_inserts"],
                    row["final_kmax"],
                ]
                for row in rows
            ],
        )
    )
    static = rows[:-1]
    adaptive = rows[-1]
    refills = [row["refills"] for row in static]
    inserts = [row["view_inserts"] for row in static]
    # The trade-off that creates the interior optimum: refills fall
    # with kmax while per-arrival view traffic rises.
    assert refills[0] > refills[-1]
    assert inserts[-1] > inserts[0]
    # The paper's tuned kmax for k=10 was 2k: at least verify kmax=k
    # (the degenerate choice) is never the fastest configuration.
    seconds = [row["seconds"] for row in static]
    assert seconds.index(min(seconds)) != 0
    # Yi et al.'s adaptive policy: it discovers slack (kmax grows off
    # the degenerate start for queries that refilled) and stays within
    # bounds, but — as the paper reports — it does not beat a
    # fine-tuned static kmax. Allow generous noise: the claim is "no
    # free lunch", not a precise ratio.
    low, high = adaptive["final_kmax"].split("..")
    assert K <= int(low) and int(high) <= 8 * K
    assert int(high) > K  # at least one query adapted upward
    assert adaptive["seconds"] > 0.7 * min(seconds)
