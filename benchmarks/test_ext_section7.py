"""Section 7 extensions: constrained, threshold, update-stream costs.

The paper presents these qualitatively; the benches quantify that each
extension retains the framework's scalability properties:

- a constrained query processes no more cells than its unconstrained
  twin (its influence region is clipped by the constraint region);
- threshold monitoring via influence lists beats the naive
  check-every-query-on-every-update strategy;
- TMA on an explicit-deletion update stream stays far ahead of
  brute-force re-evaluation.
"""

import random

from repro.bench.reporting import format_table
from repro.core.engine import StreamMonitor
from repro.core.queries import ThresholdQuery, TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.window import CountBasedWindow
from repro.extensions.constrained import constrained_query
from repro.extensions.threshold import ThresholdMonitor
from repro.extensions.update_model import UpdateStreamMonitor
from repro.streams.generators import Independent, make_distribution
from repro.streams.stream import StreamDriver
from repro.streams.update_stream import UpdateStreamDriver


def test_constrained_queries_stay_inside_their_region(benchmark):
    """Figure 12's property: a constrained query's book-keeping never
    leaves the cells intersecting its constraint rectangle.

    (A constrained query can legitimately *cost more* than an
    unconstrained twin — its kth score is lower, so the clipped
    influence region may span more cells; the guarantee the paper
    gives is locality, not cheapness.)
    """

    def measure():
        driver = StreamDriver(Independent(2), 50, seed=3)
        monitor = StreamMonitor(
            2,
            CountBasedWindow(3_000),
            algorithm="tma",
            cells_per_axis=12,
        )
        monitor.process(driver.warmup(3_000))
        query = constrained_query(
            LinearFunction([1.0, 2.0]),
            k=10,
            ranges=[(0.1, 0.6), (0.2, 0.7)],
        )
        qid = monitor.add_query(query)
        monitor.counters.reset()
        for batch in driver.batches(10):
            monitor.process(batch)
        grid = monitor.algorithm.grid
        influence_cells = [
            cell
            for cell in grid.cells()
            if qid in cell.influence
        ]
        return query, influence_cells, monitor.counters.cells_processed

    query, influence_cells, cells_processed = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(
        f"\nconstrained query: {len(influence_cells)} influence cells, "
        f"{cells_processed} cells processed over 10 cycles"
    )
    assert influence_cells, "query should influence at least one cell"
    for cell in influence_cells:
        assert query.constraint.intersects(cell.lower, cell.upper), (
            f"influence entry outside the constraint region: {cell}"
        )


def test_threshold_monitor_beats_naive(benchmark):
    """Naive strategy: score every arrival against every query."""

    def measure():
        driver = StreamDriver(Independent(2), 100, seed=5)
        monitor = ThresholdMonitor(
            2, CountBasedWindow(5_000), cells_per_axis=12
        )
        monitor.process(driver.warmup(5_000))
        rng = random.Random(6)
        queries = []
        for _ in range(30):
            f = LinearFunction(
                [rng.uniform(0.3, 1.0), rng.uniform(0.3, 1.0)]
            )
            threshold = 0.9 * f.score((1.0, 1.0))
            queries.append(ThresholdQuery(f, threshold))
            monitor.add_query(queries[-1])
        monitor.counters.reset()
        batches = driver.materialize(10)
        for batch in batches:
            monitor.process(batch)
        smart_checks = monitor.counters.influence_checks
        naive_checks = sum(len(b) for b in batches) * len(queries) * 2
        return smart_checks, naive_checks

    smart, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nthreshold monitoring checks: influence-list={smart} naive={naive}")
    assert smart < naive / 5


def test_update_stream_tma_vs_brute(benchmark):
    def run(algorithm):
        driver = UpdateStreamDriver(
            make_distribution("ind", 2),
            rate=100,
            min_lifetime=5,
            max_lifetime=40,
            seed=7,
        )
        monitor = UpdateStreamMonitor(
            2, algorithm=algorithm, cells_per_axis=8
        )
        rng = random.Random(8)
        for _ in range(10):
            monitor.add_query(
                TopKQuery(
                    LinearFunction(
                        [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                    ),
                    k=10,
                )
            )
        for batch in driver.batches(20):
            monitor.process(batch.insertions, batch.deletions)
        return sum(monitor.cycle_seconds)

    def measure():
        return {name: run(name) for name in ("tma", "brute")}

    seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nupdate-stream monitoring: TMA={seconds['tma']:.4f}s "
        f"brute={seconds['brute']:.4f}s"
    )
    assert seconds["tma"] < seconds["brute"]
