"""Ablation: TSL's sorted-list container — array vs skip list.

The paper's TSL maintains d sorted attribute lists under r insertions
and r deletions per cycle. A 2006 C implementation would use a
pointer-based O(log n) structure (skip list / balanced tree); CPython
changes the constants completely: a bisect-sorted array pays O(n) per
update, but the memmove runs in C, while the skip list's O(log n)
pointer chase runs in interpreted bytecode. Both containers are
implemented and plug into TSL; this bench measures them on identical
workloads — and whichever wins, the result set must be identical.

(The space benchmarks use the paper's layout-based byte accounting, so
the container choice does not affect reported space.)
"""

from repro.algorithms.tsl import ThresholdSortedListAlgorithm
from repro.bench.reporting import format_table
from repro.core.engine import StreamMonitor
from repro.core.window import CountBasedWindow
from repro.bench.workloads import scaled_defaults
from repro.streams.generators import make_distribution
from repro.streams.stream import StreamDriver


def run(list_impl: str, n: int):
    spec = scaled_defaults(
        n=n, rate=max(1, n // 100), num_queries=12, cycles=8
    )
    driver = StreamDriver(
        make_distribution(spec.distribution, spec.dims),
        spec.rate,
        seed=spec.seed,
    )
    monitor = StreamMonitor(
        spec.dims,
        CountBasedWindow(spec.n),
        algorithm=ThresholdSortedListAlgorithm(
            spec.dims, list_impl=list_impl
        ),
    )
    monitor.process(driver.warmup(spec.n))
    qids = [monitor.add_query(query) for query in spec.make_queries()]
    monitor.cycle_seconds.clear()
    for batch in driver.batches(spec.cycles):
        monitor.process(batch)
    final = {
        qid: [entry.rid for entry in monitor.result(qid)] for qid in qids
    }
    return monitor.total_cpu_seconds, final


def test_array_vs_skiplist(benchmark):
    def measure():
        out = {}
        for n in (4_000, 16_000):
            for impl in ("array", "skiplist"):
                seconds, final = run(impl, n)
                out[(impl, n)] = {"seconds": seconds, "final": final}
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n== Ablation: TSL sorted-list container (maintenance time) ==")
    rows = []
    for n in (4_000, 16_000):
        rows.append(
            [
                n,
                f"{out[('array', n)]['seconds']:.4f}",
                f"{out[('skiplist', n)]['seconds']:.4f}",
            ]
        )
    print(format_table(["N", "array [s]", "skiplist [s]"], rows))
    # Identical answers regardless of container.
    for n in (4_000, 16_000):
        assert (
            out[("array", n)]["final"] == out[("skiplist", n)]["final"]
        )
    # Both must finish the workload in sane time; which one wins is a
    # platform property (C memmove vs interpreted pointer chase) and
    # is reported, not asserted.
    for data in out.values():
        assert data["seconds"] < 60.0
