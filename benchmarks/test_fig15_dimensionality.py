"""Figure 15: CPU time versus data dimensionality (IND and ANT).

Paper shape: all methods degrade with d (grid methods because top-k
computations en-heap d neighbours per processed cell; TSL because d
sorted lists must be maintained and TA probes d cursors); the grid
methods beat TSL by around an order of magnitude, with SMA ≤ TMA.

Scale note (see EXPERIMENTS.md): TSL's dominant cost is scoring every
arrival against every query — O(r·Q) per cycle — which buries it at
the paper's N=1M/Q=1000 but is mild at our scaled Q. The IND ordering
still reproduces outright; for ANT (whose dense frontier inflates the
grid methods' from-scratch traversals at small N) this bench asserts
the scale-robust parts: SMA ≤ TMA, and the influence lists cut the
per-arrival query checks far below TSL's r·Q — the architectural
mechanism behind the paper's gap. ``test_scaling_crossover.py`` shows
the time gap widening toward paper scale.
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

DIMS = [2, 3, 4, 5, 6]
ALGOS = ("tsl", "tma", "sma")


def sweep(distribution: str):
    spec = scaled_defaults(
        n=10_000,
        rate=100,
        num_queries=40,
        cycles=6,
        distribution=distribution,
    )
    series = {name: [] for name in ALGOS}
    checks = {name: [] for name in ALGOS}
    for dims in DIMS:
        runs = compare_algorithms(spec.with_(dims=dims), ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
            checks[name].append(runs[name].counters.influence_checks)
    return series, checks


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_fig15_cpu_vs_dimensionality(benchmark, distribution):
    series, checks = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    label = "a" if distribution == "ind" else "b"
    print_series(
        f"Figure 15({label}): CPU time vs d ({distribution.upper()})",
        "d",
        DIMS,
        {name.upper(): series[name] for name in ALGOS},
    )
    # TSL's cost grows with dimensionality (d sorted lists + TA).
    assert series["tsl"][-1] > series["tsl"][0]
    # Assertions are restricted to d <= 4: at the scaled-down N the
    # auto-tuned grid drops to 2-3 cells per axis for d >= 5, where an
    # influence region can no longer be isolated from the rest of the
    # workspace (see EXPERIMENTS.md, "high-dimensional caveat"); the
    # paper's N=1M sustains ~5 cells/axis at the same occupancy.
    asserted = [i for i, dims in enumerate(DIMS) if dims <= 4]
    for index in asserted:
        # Influence lists prune per-arrival work below TSL's r·Q scan.
        assert checks["tma"][index] < checks["tsl"][index], f"d={DIMS[index]}"
        assert checks["sma"][index] < checks["tsl"][index], f"d={DIMS[index]}"
    if distribution == "ind":
        # Aggregate over the asserted span: single-point timings are
        # noisy at millisecond scale, the sweep total is not.
        tsl_total = sum(series["tsl"][i] for i in asserted)
        assert sum(series["tma"][i] for i in asserted) < tsl_total
        assert sum(series["sma"][i] for i in asserted) < tsl_total
    else:
        # ANT: the scale-robust ordering, on the sweep aggregate
        # (paper: SMA outperforms TMA for all settings).
        assert sum(series["sma"]) <= sum(series["tma"]) * 1.05
