"""Benchmark-suite configuration.

Prints the experiment banner (the paper's Table 1 against the scaled
operating point actually used) once per session, and provides shared
fixtures. Run with::

    pytest benchmarks/ --benchmark-only

Scale knob: ``REPRO_SCALE`` multiplies N / r / Q of the scaled
defaults (1.0 ≈ N=20K; 50 restores the paper's N=1M — expect hours
under CPython at that size).
"""

from __future__ import annotations

import gc

import pytest

from repro.bench.reporting import format_table
from repro.bench.workloads import TABLE_1, env_scale, scaled_defaults


@pytest.fixture(autouse=True)
def settle_gc():
    """Collect cyclic garbage *before* each benchmark test.

    Some benches build structures that are cyclic by nature (the TSL
    skiplist's doubly-linked towers leave ~300k cycle objects), and a
    full suite run accumulates that debt until a gen-2 collection
    fires — if it fires inside another test's timed section, that test
    is charged hundreds of milliseconds of unrelated GC work and a
    timing assertion (e.g. TMA-vs-brute) flips on heap layout rather
    than algorithm cost. Settling the heap up front keeps each bench's
    measurement its own.
    """
    gc.collect()
    yield


def pytest_sessionstart(session):
    spec = scaled_defaults()
    print("\n" + "=" * 72)
    print("Reproduction of Mouratidis, Bakiras & Papadias, SIGMOD 2006")
    print("Continuous Monitoring of Top-k Queries over Sliding Windows")
    print("=" * 72)
    rows = [
        [name, str(info["default"]), ", ".join(map(str, info["range"]))]
        for name, info in TABLE_1.items()
    ]
    print("Table 1 (paper): system parameters")
    print(format_table(["Parameter", "Default", "Range"], rows))
    print(
        f"\nScaled operating point (REPRO_SCALE={env_scale():g}): "
        f"N={spec.n}, r={spec.rate}, Q={spec.num_queries}, k={spec.k}, "
        f"d={spec.dims}, grid={spec.grid_cells_per_axis()}^d, "
        f"cycles={spec.cycles}"
    )
    print("=" * 72)


@pytest.fixture(scope="session")
def base_spec():
    """The scaled default workload; benches derive sweeps from it."""
    return scaled_defaults()
