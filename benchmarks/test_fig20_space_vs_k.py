"""Figure 20: space requirements versus k.

Paper shape: all methods store more as k grows (result tuples per
query + influence-list growth for the grid methods); TSL consumes more
than TMA/SMA because of its d additional sorted lists; SMA sits
slightly above TMA (dominance counters + skyband extras).
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import run_workload
from repro.bench.workloads import scaled_defaults

KS = [1, 5, 10, 20, 50, 100]
ALGOS = ("tsl", "tma", "sma")


def sweep(distribution: str):
    spaces = {name: [] for name in ALGOS}
    for k in KS:
        spec = scaled_defaults(
            n=8_000,
            rate=80,
            num_queries=12,
            cycles=4,
            k=k,
            distribution=distribution,
        )
        for name in ALGOS:
            run = run_workload(spec, name)
            spaces[name].append(run.space.total_mb)
    return spaces


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_fig20_space_vs_k(benchmark, distribution):
    spaces = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    label = "a" if distribution == "ind" else "b"
    print_series(
        f"Figure 20({label}): space vs k ({distribution.upper()})",
        "k",
        KS,
        {name.upper(): spaces[name] for name in ALGOS},
        unit="MB",
    )
    for name in ALGOS:
        assert spaces[name][-1] > spaces[name][0], name
    for index in range(len(KS)):
        # TSL pays for the d sorted lists at every k.
        assert spaces["tsl"][index] > spaces["tma"][index]
        assert spaces["tsl"][index] > spaces["sma"][index]
        # SMA stores the skyband (3 words/entry) vs TMA's top list.
        assert spaces["sma"][index] >= spaces["tma"][index]
