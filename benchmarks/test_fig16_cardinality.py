"""Figure 16: CPU time versus data cardinality N, with r = N/100.

Paper shape: every method degrades as N (and with it r) grows; the
grid methods scale much better than TSL — "more than one order of
magnitude faster in most cases" — and ANT costs more than IND because
the top-k computation must descend through many near-frontier cells.
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

CARDINALITIES = [4_000, 8_000, 12_000, 16_000, 20_000]
ALGOS = ("tsl", "tma", "sma")


def sweep(distribution: str):
    series = {name: [] for name in ALGOS}
    cells = {name: [] for name in ALGOS}
    for n in CARDINALITIES:
        spec = scaled_defaults(
            n=n,
            rate=max(1, n // 100),
            num_queries=12,
            cycles=6,
            distribution=distribution,
        )
        runs = compare_algorithms(spec, ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
            cells[name].append(runs[name].counters.cells_processed)
    return series, cells


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_fig16_cpu_vs_cardinality(benchmark, distribution):
    series, _ = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    label = "a" if distribution == "ind" else "b"
    print_series(
        f"Figure 16({label}): CPU time vs N, r=N/100 "
        f"({distribution.upper()})",
        "N",
        CARDINALITIES,
        {name.upper(): series[name] for name in ALGOS},
    )
    # TSL degrades with N (r grows with it, and so does every sorted
    # list operation).
    assert series["tsl"][-1] > series["tsl"][0]
    if distribution == "ind":
        # The paper's ordering reproduces directly on IND (sweep
        # aggregates: single points are noisy at millisecond scale).
        assert sum(series["tma"]) < sum(series["tsl"])
        assert sum(series["sma"]) < sum(series["tsl"])
    else:
        # ANT at sub-paper scale: assert the scale-robust ordering
        # (SMA <= TMA; the TSL time gap needs paper-scale N·Q, see
        # test_scaling_crossover.py and EXPERIMENTS.md).
        assert sum(series["sma"]) <= sum(series["tma"]) * 1.05


def test_fig16_ant_costs_more_cells_than_ind(benchmark):
    """The paper's explanation, checked on the machine-independent
    counter: ANT forces the top-k computation module through more
    cells than IND at identical parameters."""

    def measure():
        out = {}
        for distribution in ("ind", "ant"):
            spec = scaled_defaults(
                n=8_000,
                rate=80,
                num_queries=12,
                cycles=6,
                distribution=distribution,
            )
            runs = compare_algorithms(spec, ("tma",), check_results=False)
            out[distribution] = runs["tma"].counters.cells_processed
        return out

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nTMA cells processed: IND={cells['ind']} ANT={cells['ant']}"
    )
    assert cells["ant"] > cells["ind"]
