"""Figure 19: CPU time versus result cardinality k.

Paper shape: influence regions — hence processed cells, maintenance
and recomputation work — grow with k. TMA and SMA start close, but the
gap widens with k because Pr_rec (the probability that a current
result expires, forcing TMA to recompute from scratch) grows with k;
at k=100/ANT the paper measures TMA almost at TSL's cost.
"""

import pytest

from repro.bench.reporting import format_table, print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

KS = [1, 5, 10, 20, 50]
ALGOS = ("tsl", "tma", "sma")


def sweep(distribution: str):
    series = {name: [] for name in ALGOS}
    prrec = {"tma": [], "sma": []}
    for k in KS:
        spec = scaled_defaults(
            n=8_000,
            rate=80,
            num_queries=12,
            cycles=8,
            k=k,
            distribution=distribution,
        )
        runs = compare_algorithms(spec, ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
        for name in ("tma", "sma"):
            prrec[name].append(runs[name].recomputation_rate)
    return series, prrec


@pytest.mark.parametrize("distribution", ["ind", "ant"])
def test_fig19_cpu_vs_k(benchmark, distribution):
    series, prrec = benchmark.pedantic(
        lambda: sweep(distribution), rounds=1, iterations=1
    )
    label = "a" if distribution == "ind" else "b"
    print_series(
        f"Figure 19({label}): CPU time vs k ({distribution.upper()})",
        "k",
        KS,
        {name.upper(): series[name] for name in ALGOS},
    )
    print("\nEmpirical Pr_rec (recomputations / query / cycle):")
    print(
        format_table(
            ["k"] + [str(k) for k in KS],
            [
                ["TMA"] + [f"{p:.3f}" for p in prrec["tma"]],
                ["SMA"] + [f"{p:.3f}" for p in prrec["sma"]],
            ],
        )
    )

    # Pr_rec grows with k for TMA (the paper's explanation of the
    # widening TMA/SMA gap) and SMA recomputes no more often than TMA.
    assert prrec["tma"][-1] > prrec["tma"][0]
    for index in range(len(KS)):
        assert prrec["sma"][index] <= prrec["tma"][index] + 1e-9

    if distribution == "ind":
        # Grid methods stay ahead of TSL on IND (sweep aggregate).
        assert sum(series["sma"]) < sum(series["tsl"])

    # The TMA-over-SMA cost ratio widens as k grows (compare the
    # small-k and large-k halves to be robust to per-point noise).
    ratios = [
        tma / max(sma, 1e-9)
        for tma, sma in zip(series["tma"], series["sma"])
    ]
    first_half = sum(ratios[:2]) / 2
    second_half = sum(ratios[-2:]) / 2
    assert second_half > first_half * 0.9
