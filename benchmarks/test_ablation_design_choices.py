"""Ablations of the paper's two explicit design choices.

1. **Heap traversal vs naive sorted-cell scan** (Section 4.2): the
   paper motivates the Figure 6 heap by noting the naive alternative
   "requires computing the maxscore for all cells and subsequently
   sorting them". We run both on identical grids and count priced
   cells and wall-clock.
2. **Lazy vs eager influence-list cleanup** (Section 4.3): the paper
   keeps stale entries until the next from-scratch computation. The
   eager variant trims lists on every gate rise; it produces identical
   results while paying for an influence-staircase walk per shrink —
   quantified here in influence-list updates and time.
"""

import random

from repro.algorithms.tma import TopKMonitoringAlgorithm
from repro.bench.reporting import format_table
from repro.core.queries import TopKQuery
from repro.core.scoring import LinearFunction
from repro.core.stats import OpCounters
from repro.core.tuples import RecordFactory
from repro.grid.grid import Grid
from repro.grid.naive import compute_top_k_naive
from repro.grid.traversal import compute_top_k
from repro.streams.generators import Independent
from repro.streams.stream import StreamDriver


def test_heap_traversal_vs_naive_scan(benchmark):
    def measure():
        rng = random.Random(13)
        grid = Grid(4, 8)  # 4096 cells
        factory = RecordFactory()
        for _ in range(20_000):
            grid.insert(
                factory.make(tuple(rng.random() for _ in range(4)))
            )
        functions = [
            LinearFunction([rng.uniform(0.1, 1.0) for _ in range(4)])
            for _ in range(20)
        ]
        import time

        out = {}
        for name, fn in (
            ("heap", compute_top_k),
            ("naive", compute_top_k_naive),
        ):
            counters = OpCounters()
            started = time.perf_counter()
            results = [fn(grid, f, 20, counters) for f in functions]
            out[name] = {
                "seconds": time.perf_counter() - started,
                "cells_priced": counters.cells_enheaped,
                "cells_scanned": counters.cells_processed,
                "top": [
                    [e.rid for e in outcome.entries] for outcome in results
                ],
            }
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n== Ablation: Figure 6 heap vs naive sorted scan "
          "(20 top-20 computations, 8^4 grid, N=20K) ==")
    print(
        format_table(
            ["method", "CPU [s]", "cells priced", "cells scanned"],
            [
                [
                    name,
                    f"{data['seconds']:.4f}",
                    data["cells_priced"],
                    data["cells_scanned"],
                ]
                for name, data in out.items()
            ],
        )
    )
    # Identical results ...
    assert out["heap"]["top"] == out["naive"]["top"]
    # ... but the naive scan prices every cell for every query, the
    # heap prices only the influence region plus its boundary.
    assert out["heap"]["cells_priced"] < out["naive"]["cells_priced"] / 5
    assert out["heap"]["seconds"] < out["naive"]["seconds"]


def test_lazy_vs_eager_influence_cleanup(benchmark):
    def run(eager: bool):
        driver = StreamDriver(Independent(2), 100, seed=17)
        algo = TopKMonitoringAlgorithm(
            2, cells_per_axis=12, eager_cleanup=eager
        )
        warm = driver.warmup(8_000)
        algo.process_cycle(warm, [])
        rng = random.Random(18)
        for qid in range(20):
            query = TopKQuery(
                LinearFunction(
                    [rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)]
                ),
                k=50,  # large k: wide influence staircases, frequent rises
            )
            query.qid = qid
            algo.register(query)
        algo.counters.reset()
        import time

        window = list(warm)
        started = time.perf_counter()
        final = None
        for batch in driver.batches(15):
            window.extend(batch)
            expired = [window.pop(0) for _ in range(len(batch))]
            algo.process_cycle(batch, expired)
        seconds = time.perf_counter() - started
        final = {
            qid: [e.rid for e in algo.current_result(qid)]
            for qid in range(20)
        }
        return {
            "seconds": seconds,
            "il_updates": algo.counters.influence_list_updates,
            "trim_visits": algo.counters.influence_trim_visits,
            "final": final,
        }

    def measure():
        return {"lazy": run(False), "eager": run(True)}

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n== Ablation: lazy vs eager influence-list cleanup "
          "(TMA, 15 cycles, Q=20) ==")
    print(
        format_table(
            ["policy", "CPU [s]", "IL updates", "trim-walk visits"],
            [
                [
                    name,
                    f"{data['seconds']:.4f}",
                    data["il_updates"],
                    data["trim_visits"],
                ]
                for name, data in out.items()
            ],
        )
    )
    # Identical results. The eager policy walks the influence
    # staircase on every gate rise — usually to remove little or
    # nothing, because the kth score rarely crosses a whole cell's
    # maxscore boundary. Lazy cleanup skips those walks entirely (the
    # paper's Section 4.3 design choice).
    assert out["lazy"]["final"] == out["eager"]["final"]
    assert out["lazy"]["trim_visits"] == 0
    assert out["eager"]["trim_visits"] > 100
