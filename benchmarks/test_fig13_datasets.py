"""Figure 13: the IND and ANT datasets (d = 2).

The paper shows scatter plots; a text harness characterises the same
thing statistically: IND is uniform with ~zero inter-dimension
correlation, ANT concentrates around the anti-diagonal plane with a
strong negative correlation. The benchmark times raw generation
throughput (the simulation's fixed cost).
"""

import random

from repro.bench.reporting import format_table
from repro.streams.generators import (
    AntiCorrelated,
    Independent,
    correlation_matrix,
)

SAMPLES = 5_000


def characterise(distribution, seed=17):
    rng = random.Random(seed)
    points = distribution.sample_many(rng, SAMPLES)
    corr = correlation_matrix(points)
    means = [
        sum(p[i] for p in points) / len(points)
        for i in range(distribution.dims)
    ]
    return points, means, corr


def test_fig13_dataset_characteristics(benchmark):
    ind = Independent(2)
    ant = AntiCorrelated(2)

    def generate_both():
        rng = random.Random(23)
        ind.sample_many(rng, SAMPLES)
        ant.sample_many(rng, SAMPLES)

    benchmark.pedantic(generate_both, rounds=3, iterations=1)

    _, ind_means, ind_corr = characterise(ind)
    _, ant_means, ant_corr = characterise(ant)

    print("\n== Figure 13: dataset characteristics (d=2, 5000 points) ==")
    print(
        format_table(
            ["dataset", "mean x1", "mean x2", "corr(x1,x2)"],
            [
                ["IND", f"{ind_means[0]:.3f}", f"{ind_means[1]:.3f}",
                 f"{ind_corr[0][1]:+.3f}"],
                ["ANT", f"{ant_means[0]:.3f}", f"{ant_means[1]:.3f}",
                 f"{ant_corr[0][1]:+.3f}"],
            ],
        )
    )

    # Shape assertions: IND uncorrelated, ANT strongly anti-correlated.
    assert abs(ind_corr[0][1]) < 0.08
    assert ant_corr[0][1] < -0.5
    for mean in ind_means + ant_means:
        assert 0.4 < mean < 0.6


def test_fig13_ant_frontier_is_crowded(benchmark):
    """The consequence the paper cares about: ANT has a much larger
    k-skyband frontier than IND, which is why every ANT experiment
    costs more (Section 8, discussion of Figure 16)."""
    from repro.skyband.skyline import k_skyband

    rng = random.Random(29)
    ind_points = Independent(2).sample_many(rng, 600)
    ant_points = AntiCorrelated(2).sample_many(rng, 600)

    result = {}

    def measure():
        result["ind"] = len(k_skyband(ind_points, 5, (1, 1)))
        result["ant"] = len(k_skyband(ant_points, 5, (1, 1)))

    benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\n5-skyband size over 600 points: IND={result['ind']} "
        f"ANT={result['ant']}"
    )
    assert result["ant"] > 2 * result["ind"]
