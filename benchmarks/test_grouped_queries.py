"""Grouped traversal: CPU time vs Q at fixed query similarity.

The grouped-recomputation workload: Q linear queries drawn near one
base preference vector (``WorkloadSpec.query_similarity``), so TMA's
from-scratch recomputations cluster into large groups and the grouped
sweep amortises one cell scan over the whole cluster. The sweep grows
Q at fixed similarity and compares plain vs grouped TMA/SMA; the win
should widen with Q (more queries per shared sweep), while results
stay identical — ``compare_algorithms`` cross-checks every run.
"""

import pytest

from repro.bench.reporting import print_series
from repro.bench.runner import compare_algorithms
from repro.bench.workloads import scaled_defaults

QUERY_COUNTS = [8, 24, 48]
ALGOS = ("tma", "tma-grouped", "sma", "sma-grouped")
SIMILARITY = 0.9


def sweep():
    series = {name: [] for name in ALGOS}
    grouped_served = []
    for q in QUERY_COUNTS:
        spec = scaled_defaults(
            n=6_000,
            rate=60,
            num_queries=q,
            cycles=6,
            query_similarity=SIMILARITY,
        )
        runs = compare_algorithms(spec, ALGOS)
        for name in ALGOS:
            series[name].append(runs[name].total_seconds)
        grouped_served.append(
            runs["tma-grouped"].counters.grouped_queries_served
        )
    return series, grouped_served


def test_grouped_sweep_query_cardinality(benchmark):
    series, grouped_served = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print_series(
        f"Grouped traversal: CPU time vs Q (similarity={SIMILARITY})",
        "Q",
        QUERY_COUNTS,
        {name.upper(): series[name] for name in ALGOS},
    )
    # The similar workload must actually drive queries through shared
    # sweeps, increasingly so as Q grows.
    assert grouped_served[0] > 0
    assert grouped_served[-1] > grouped_served[0]
    # Recomputation cost dominates TMA on this workload; at the top of
    # the sweep the shared sweeps must not cost more than per-query
    # recomputation (we assert a modest bound here — the committed
    # BENCH_PR2.json capture documents the headline speedup at Q>=100,
    # where per-run noise is far smaller than the gap).
    assert series["tma-grouped"][-1] < series["tma"][-1] * 1.10
