# One-command gates for this reproduction. PYTHONPATH-based so no
# install step is required (the container has no network).

PY := PYTHONPATH=src python

.PHONY: test selfcheck bench-smoke bench-json examples serve-smoke check cluster-smoke approx-smoke obs-smoke

# Docs-facing smoke: every example must run end to end (CI mirrors
# this on both batch backends with a hard per-script timeout).
examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		PYTHONPATH=src timeout 120 python $$script > /dev/null || exit 1; \
	done

# Tier-1: the full unit + benchmark-trend suite.
test:
	$(PY) -m pytest -x -q

# Static gates: the project-invariant analyzer (docs/ANALYSIS.md) and
# scoped strict typing. mypy is optional tooling (not baked into the
# runtime image), so its leg degrades to a notice when absent.
check:
	$(PY) -m repro.analysis.check src/repro
	@if python -c "import mypy" 2>/dev/null; then \
		PYTHONPATH=src python -m mypy --config-file mypy.ini; \
	else \
		echo "mypy not installed; skipping typed-module check (CI runs it)"; \
	fi

# Exact-parity sweep of all algorithms against the brute-force oracle.
selfcheck:
	$(PY) -m repro.bench selfcheck

# The perf-PR gate: tier-1 tests, the parity oracle, and three short
# micro-benches that exercise every batched hot path end to end —
# the similarity-grouped recomputation variants (cross-checked against
# the per-query paths) and the sharded worker-pool engine.
bench-smoke: test selfcheck
	$(PY) -m repro.bench run --n 4000 --rate 40 --queries 10 --cycles 5
	$(PY) -m repro.bench run --n 4000 --rate 200 --queries 24 --cycles 5 \
		--similarity 0.9 --algorithms tma,tma-grouped,sma,sma-grouped
	$(PY) -m repro.bench run --n 4000 --rate 40 --queries 12 --cycles 5 \
		--shards 2 --algorithms tma,sma
	$(PY) -m repro.bench run --n 4000 --rate 40 --queries 12 --cycles 8 \
		--churn

# The serving gate: drive the network front-end end to end (server +
# three socket clients with a bitwise replay check), then capture a
# delivery-latency leg with a deliberately-stalled co-subscriber. CI
# mirrors this on both batch backends under hard timeouts.
serve-smoke:
	PYTHONPATH=src timeout 120 python examples/service_client.py
	PYTHONPATH=src timeout 300 python -m repro.bench run --n 2000 \
		--rate 100 --queries 6 --cycles 10 --algorithms tma --serve

# The multi-node gate: transport + remote-shard suites (loopback
# subprocess hosts, bitwise parity against in-process and pipe-sharded
# twins, failure modes) plus a TCP-sharded bench leg with
# bytes-on-the-wire accounting. CI mirrors this on both batch backends
# under hard timeouts.
cluster-smoke:
	PYTHONPATH=src timeout 360 python -m pytest -q \
		tests/transport tests/cluster \
		tests/integration/test_remote_parity.py
	PYTHONPATH=src timeout 180 python -m repro.bench run --n 3000 \
		--rate 30 --queries 10 --cycles 5 --shards tcp:2 \
		--algorithms tma,sma

# The approximate-tier gate: the contract property tests and the
# sharded (pipe + TCP) sketch-parity suite, then an --approx bench leg
# that sweeps ε against an in-process exact baseline and exits
# non-zero if any report violates its certified bound. CI mirrors
# this on both batch backends under hard timeouts.
approx-smoke:
	PYTHONPATH=src timeout 360 python -m pytest -q tests/approx
	PYTHONPATH=src timeout 180 python -m repro.bench run --n 4000 \
		--rate 200 --queries 30 --cycles 5 --algorithms tma \
		--approx 0.05,0.1

# The observability gate: the obs unit suites (metrics registry,
# tracer, HTTP endpoint, engine integration), the delivery-latency
# instrumentation tests, and the pipe-vs-TCP metric-merge parity
# suite; then the end-to-end loop — a traced monitor served over TCP,
# scraped via HTTP, with every OpCounters field verified to
# round-trip through /metrics. CI mirrors this on both batch backends
# under hard timeouts.
obs-smoke:
	PYTHONPATH=src timeout 360 python -m pytest -q \
		tests/obs tests/service/test_delivery_metrics.py \
		tests/service/test_server_metrics.py \
		tests/parallel/test_metrics_parity.py
	PYTHONPATH=src timeout 120 python examples/metrics_scrape.py

# Capture a machine-readable baseline on the default workload
# (the BENCH_PR1.json format's per-run payload).
bench-json:
	$(PY) -m repro.bench run --json bench_capture.json
